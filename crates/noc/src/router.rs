//! The SCORPIO main-network router (Figure 2).
//!
//! A three-stage virtual-channel router:
//!
//! 1. **BW + SA-I** — arriving flits are buffered while arbitrating among
//!    the input port's VCs for the crossbar input slot;
//! 2. **SA-O + VS** — SA-I winners arbitrate per crossbar output port and
//!    select a free VC at the next router;
//! 3. **ST** — winners traverse the crossbar; flits spend the following
//!    cycle on the link.
//!
//! Three optimizations from the paper are modelled faithfully:
//!
//! * **Lookahead bypassing**: a lookahead is emitted during a flit's ST
//!   stage and processed by the next router one cycle before the flit
//!   arrives; if it wins switch allocation (all-or-nothing for its whole
//!   output set) and a downstream VC, the flit skips straight to ST —
//!   a single-cycle router traversal. Lookaheads beat buffered flits,
//!   except flits in reserved VCs which beat lookaheads.
//! * **Single-cycle multicast**: a broadcast flit forks through every
//!   granted output port in the same cycle; ungranted branches retry.
//! * **Reserved VC (rVC) deadlock avoidance**: each ordered-vnet input port
//!   has one extra VC allocatable only to the request whose SID equals the
//!   ESID of a NIC local to the downstream router.
//!
//! Point-to-point ordering is enforced with per-output-port SID trackers:
//! a request cannot be allocated toward an output while another request
//! with the same SID occupies a VC of the downstream input port.

use crate::arbiter::RotatingArbiter;
use crate::config::NocConfig;
use crate::flit::{Flit, Payload, Sid};
use crate::obs::NetObs;
use crate::tables::{RouteCtx, RoutingTables, VcClass};
use crate::topology::{Port, PortMask, RouterId};
use scorpio_sim::stats::Counter;

/// A flit arriving at an input port, tagged with the VC the upstream VS
/// stage allocated for it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FlitArrival<T> {
    pub port: Port,
    pub vc: u8,
    pub flit: Flit<T>,
}

/// A lookahead: the control information of a single-flit packet, arriving
/// one cycle ahead of the flit itself.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LaArrival<T> {
    pub port: Port,
    pub flit: Flit<T>,
}

/// A credit returning from the downstream input port attached to `out_port`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditArrival {
    pub out_port: Port,
    pub vnet: u8,
    pub vc: u8,
    /// Tail left the downstream buffer: the VC is free for a new packet.
    pub dealloc: bool,
}

/// Everything a router emits during one tick; the network stages these onto
/// the appropriate wires.
#[derive(Debug)]
pub(crate) enum RouterOut<T> {
    /// A flit traversed the crossbar through `out_port` into downstream
    /// VC `vc` (arrives in two cycles: one ST edge + one link stage).
    Flit {
        out_port: Port,
        vc: u8,
        flit: Flit<T>,
    },
    /// A lookahead for `flit`, sent during its ST stage (arrives next cycle).
    La { out_port: Port, flit: Flit<T> },
    /// A buffer slot at input `in_port` was freed; return credit upstream.
    CreditUp {
        in_port: Port,
        vnet: u8,
        vc: u8,
        dealloc: bool,
    },
}

/// Answers "may SID `s` use the reserved VC of the input port downstream of
/// (`router`, `out_port`)?" — true when `s` equals the ESID of a NIC local
/// to the downstream node.
pub(crate) trait EsidOracle {
    fn rvc_eligible(&self, router: RouterId, out_port: Port, sid: Sid, seq: u16) -> bool;
}

/// Credit/VC bookkeeping for one downstream input port, as seen from an
/// upstream output port (also used by the NIC injection path).
#[derive(Debug, Clone)]
pub(crate) struct DownstreamState {
    /// `[vnet][vc]` — VC not currently owned by a packet.
    free_vc: Vec<Vec<bool>>,
    /// `[vnet][vc]` — free buffer slots.
    credits: Vec<Vec<u8>>,
    /// `[vnet][vc]` — SID tracker for ordered vnets.
    sid_in_vc: Vec<Vec<Option<Sid>>>,
}

impl DownstreamState {
    pub(crate) fn new(cfg: &NocConfig) -> Self {
        let mut free_vc = Vec::with_capacity(cfg.vnets.len());
        let mut credits = Vec::with_capacity(cfg.vnets.len());
        let mut sid_in_vc = Vec::with_capacity(cfg.vnets.len());
        for v in &cfg.vnets {
            let n = v.total_vcs();
            free_vc.push(vec![true; n]);
            credits.push(vec![v.depth; n]);
            sid_in_vc.push(vec![None; n]);
        }
        DownstreamState {
            free_vc,
            credits,
            sid_in_vc,
        }
    }

    pub(crate) fn on_credit(&mut self, cfg: &NocConfig, vnet: u8, vc: u8, dealloc: bool) {
        let (n, c) = (vnet as usize, vc as usize);
        self.credits[n][c] += 1;
        debug_assert!(self.credits[n][c] <= cfg.vnets[n].depth);
        if dealloc {
            self.free_vc[n][c] = true;
            self.sid_in_vc[n][c] = None;
        }
    }

    /// Whether a request with `sid` is already in flight to / buffered at
    /// the downstream input port (point-to-point ordering constraint).
    pub(crate) fn sid_in_flight(&self, vnet: u8, sid: Sid) -> bool {
        self.sid_in_vc[vnet as usize]
            .iter()
            .flatten()
            .any(|s| *s == sid)
    }

    /// Whether VS could allocate a VC right now (without doing so).
    /// `class` restricts the regular-VC pool to the flit's dateline
    /// partition on wraparound topologies ([`VcClass::Any`] on a mesh).
    pub(crate) fn can_alloc(
        &self,
        cfg: &NocConfig,
        vnet: u8,
        rvc_ok: bool,
        class: VcClass,
    ) -> bool {
        let n = vnet as usize;
        let vcfg = &cfg.vnets[n];
        let regular = class
            .regular_range(vcfg.vcs)
            .any(|c| self.free_vc[n][c] && self.credits[n][c] > 0);
        if regular {
            return true;
        }
        if vcfg.ordered && rvc_ok {
            let r = vcfg.rvc_index() as usize;
            return self.free_vc[n][r] && self.credits[n][r] > 0;
        }
        false
    }

    /// VS: allocates a VC for a new packet (regular first, then the rVC if
    /// `rvc_ok`), consuming one credit. Returns the chosen VC.
    pub(crate) fn alloc_vc(
        &mut self,
        cfg: &NocConfig,
        vnet: u8,
        sid: Option<Sid>,
        rvc_ok: bool,
        class: VcClass,
    ) -> Option<u8> {
        let n = vnet as usize;
        let vcfg = &cfg.vnets[n];
        let mut pick = class
            .regular_range(vcfg.vcs)
            .find(|&c| self.free_vc[n][c] && self.credits[n][c] > 0);
        if pick.is_none() && vcfg.ordered && rvc_ok {
            let r = vcfg.rvc_index() as usize;
            if self.free_vc[n][r] && self.credits[n][r] > 0 {
                pick = Some(r);
            }
        }
        let c = pick?;
        self.free_vc[n][c] = false;
        self.credits[n][c] -= 1;
        if vcfg.ordered {
            self.sid_in_vc[n][c] = sid;
        }
        Some(c as u8)
    }

    pub(crate) fn has_credit(&self, vnet: u8, vc: u8) -> bool {
        self.credits[vnet as usize][vc as usize] > 0
    }

    pub(crate) fn take_credit(&mut self, vnet: u8, vc: u8) {
        debug_assert!(self.has_credit(vnet, vc));
        self.credits[vnet as usize][vc as usize] -= 1;
    }
}

/// State of one virtual channel at an input port. Holds at most one packet
/// at a time (VCs are reallocated only after the tail departs downstream).
#[derive(Debug, Clone)]
struct VcState<T> {
    flits: std::collections::VecDeque<Flit<T>>,
    /// Packet resident (head arrived, not fully departed).
    active: bool,
    /// Mask path (single-flit packets): outputs still to serve.
    remaining: PortMask,
    /// Mask path: outputs granted for ST next cycle.
    granted: PortMask,
    /// Mask path: downstream VC per granted output port.
    grant_vcs: [u8; Port::COUNT],
    /// Dateline class-1 bit per output port of the packet's route
    /// (always 0 on non-wraparound topologies).
    class_mask: u8,
    /// Stream path (multi-flit unicast): fixed output port after head VS.
    out_port: Option<Port>,
    /// Stream path: downstream VC for the whole packet.
    out_vc: u8,
    /// Stream path: flits granted for ST next cycle (0 or 1).
    granted_flits: u8,
}

impl<T> VcState<T> {
    fn new(depth: u8) -> Self {
        VcState {
            flits: std::collections::VecDeque::with_capacity(depth as usize),
            active: false,
            remaining: PortMask::EMPTY,
            granted: PortMask::EMPTY,
            grant_vcs: [0; Port::COUNT],
            class_mask: 0,
            out_port: None,
            out_vc: 0,
            granted_flits: 0,
        }
    }
}

/// SA-I pipeline register: the winning VC of an input port.
#[derive(Debug, Clone, Copy)]
struct SaIWin {
    vnet: u8,
    vc: u8,
    is_rvc: bool,
}

/// A bypass reservation: the flit with `uid` arriving next cycle at this
/// input port goes straight to ST through `outs`.
#[derive(Debug, Clone)]
struct BypassRes {
    uid: u64,
    outs: Vec<(Port, u8)>,
}

/// ST operations scheduled for the next cycle.
#[derive(Debug, Clone)]
enum StOp {
    /// Mask-path flit at (`port`, `vnet`, `vc`) STs through its granted set.
    MaskFlit { port: Port, vnet: u8, vc: u8 },
    /// Stream-path: the front flit of (`port`, `vnet`, `vc`) STs.
    StreamFlit { port: Port, vnet: u8, vc: u8 },
}

/// Per-router statistics.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Flits written into input buffers (took the 3-stage path).
    pub buffered_flits: Counter,
    /// Flits that bypassed straight to ST (1-stage path).
    pub bypassed_flits: Counter,
    /// Crossbar traversals (one per output-port grant, so a 4-way fork
    /// counts 4).
    pub crossings: Counter,
    /// Lookaheads that failed to set up the bypass.
    pub la_failures: Counter,
}

pub(crate) struct Router<T> {
    id: RouterId,
    /// Ports this router actually has: the prefix of [`Port::ALL`] ending
    /// after the last tile slot the topology attaches (6 on every
    /// single-tile fabric — the historical port set in its historical
    /// order, so arbitration is bit-identical there — up to 9 at
    /// concentration 4). Arbiters and port scans run over exactly this
    /// prefix.
    n_ports: usize,
    /// `[port][vnet][vc]`.
    inputs: Vec<Vec<Vec<VcState<T>>>>,
    /// Downstream credit view per output port (`None` = port absent).
    pub(crate) downstream: Vec<Option<DownstreamState>>,
    sa_i_reg: [Option<SaIWin>; Port::COUNT],
    bypass_res: [Option<BypassRes>; Port::COUNT],
    st_plan: Vec<StOp>,
    /// Recycled buffer backing `st_plan` across cycles (no per-tick alloc).
    st_scratch: Vec<StOp>,
    sa_i_arb: Vec<RotatingArbiter>,
    sa_o_arb: Vec<RotatingArbiter>,
    la_arb: RotatingArbiter,
    /// Flattened `(vnet, vc, is_rvc)` list in SA-I request order —
    /// constant per configuration, shared by every input port.
    vc_index: Vec<(u8, u8, bool)>,
    /// Reused SA-I request vector (one slot per flattened VC).
    sa_i_reqs: Vec<bool>,
    /// Resident packets per input port; a port with zero occupancy has no
    /// SA-I requester, and an all-false grant leaves the arbiter pointer
    /// untouched, so its whole SA-I scan can be skipped exactly.
    port_occupancy: [u32; Port::COUNT],
    pub(crate) stats: RouterStats,
    /// Resident packets + pending grants; used to skip idle routers.
    busy: u32,
}

impl<T: Payload> Router<T> {
    pub(crate) fn new(tables: &RoutingTables, cfg: &NocConfig, id: RouterId) -> Self {
        let total_vcs: usize = cfg.vnets.iter().map(|v| v.total_vcs()).sum();
        // The router's port set is the Port::ALL prefix covering the four
        // cardinal ports, tile slot 0, Mc, and any further tile slots the
        // topology concentrates behind this router. Single-tile fabrics
        // get n_ports == 6: the exact historical router, with identical
        // arbiter sizes and scan order.
        let n_ports = 5 + tables.concentration() as usize;
        let mut inputs = Vec::with_capacity(n_ports);
        for _ in &Port::ALL[..n_ports] {
            let mut per_vnet = Vec::with_capacity(cfg.vnets.len());
            for v in &cfg.vnets {
                per_vnet.push((0..v.total_vcs()).map(|_| VcState::new(v.depth)).collect());
            }
            inputs.push(per_vnet);
        }
        let mut downstream = Vec::with_capacity(n_ports);
        for &port in &Port::ALL[..n_ports] {
            let present = match port.tile_index() {
                Some(k) => k < tables.concentration(),
                None => match port {
                    Port::Mc => tables.has_mc(id),
                    mesh_port => tables.neighbor(id, mesh_port).is_some(),
                },
            };
            downstream.push(present.then(|| DownstreamState::new(cfg)));
        }
        let mut vc_index = Vec::with_capacity(total_vcs);
        for (n, vcfg) in cfg.vnets.iter().enumerate() {
            for vc in 0..vcfg.total_vcs() as u8 {
                let is_rvc = vcfg.ordered && vc == vcfg.rvc_index();
                vc_index.push((n as u8, vc, is_rvc));
            }
        }
        Router {
            id,
            n_ports,
            inputs,
            downstream,
            sa_i_reg: [None; Port::COUNT],
            bypass_res: Default::default(),
            st_plan: Vec::new(),
            st_scratch: Vec::new(),
            sa_i_arb: (0..n_ports)
                .map(|_| RotatingArbiter::new(total_vcs))
                .collect(),
            sa_o_arb: (0..n_ports)
                .map(|_| RotatingArbiter::new(n_ports))
                .collect(),
            la_arb: RotatingArbiter::new(n_ports),
            vc_index,
            sa_i_reqs: vec![false; total_vcs],
            port_occupancy: [0; Port::COUNT],
            stats: RouterStats::default(),
            busy: 0,
        }
    }

    /// The ports this router has (a prefix of [`Port::ALL`]).
    #[inline]
    fn ports(&self) -> &'static [Port] {
        &Port::ALL[..self.n_ports]
    }

    pub(crate) fn id(&self) -> RouterId {
        self.id
    }

    /// Whether this router can skip its tick entirely this cycle.
    pub(crate) fn is_idle(&self) -> bool {
        self.busy == 0
    }

    /// Resident packets (plus grants pending ST) across the input VCs —
    /// the quantity the observability occupancy integral samples.
    pub(crate) fn occupancy(&self) -> u32 {
        self.busy
    }

    /// One cycle: credits → ST → arrivals (bypass/BW) → SA-O/VS → SA-I.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn tick(
        &mut self,
        route: &RouteCtx<'_>,
        cfg: &NocConfig,
        esid: &dyn EsidOracle,
        arrivals: &[FlitArrival<T>],
        las: &[LaArrival<T>],
        credits: &[CreditArrival],
        out: &mut Vec<RouterOut<T>>,
        mut obs: Option<&mut NetObs>,
    ) {
        self.apply_credits(cfg, credits);
        self.execute_st(cfg, out);
        self.process_arrivals(route, cfg, arrivals, out, obs.as_deref_mut());
        self.allocate_outputs(route, cfg, esid, las, obs.as_deref_mut());
        self.sa_i(route, cfg, esid, obs);
    }

    fn apply_credits(&mut self, cfg: &NocConfig, credits: &[CreditArrival]) {
        for c in credits {
            let ds = self.downstream[c.out_port.index()]
                .as_mut()
                .expect("credit for absent output port");
            ds.on_credit(cfg, c.vnet, c.vc, c.dealloc);
        }
    }

    /// Stage 3: execute the switch traversals scheduled last cycle.
    fn execute_st(&mut self, cfg: &NocConfig, out: &mut Vec<RouterOut<T>>) {
        // Swap the plan out against the recycled scratch buffer, which
        // becomes the (empty) plan the allocation stage fills this cycle.
        let mut plan = std::mem::replace(&mut self.st_plan, std::mem::take(&mut self.st_scratch));
        for op in plan.drain(..) {
            match op {
                StOp::MaskFlit { port, vnet, vc } => {
                    let state = &mut self.inputs[port.index()][vnet as usize][vc as usize];
                    let flit = *state.flits.front().expect("granted VC lost its flit");
                    let granted = std::mem::replace(&mut state.granted, PortMask::EMPTY);
                    let grant_vcs = state.grant_vcs;
                    for p in granted.iter() {
                        state.remaining.remove(p);
                    }
                    let done = state.remaining.is_empty();
                    if done {
                        state.flits.pop_front();
                        state.active = false;
                        self.busy -= 1;
                        self.port_occupancy[port.index()] -= 1;
                        out.push(RouterOut::CreditUp {
                            in_port: port,
                            vnet,
                            vc,
                            dealloc: true,
                        });
                    }
                    for p in granted.iter() {
                        self.emit_flit(cfg, p, grant_vcs[p.index()], flit, out);
                    }
                }
                StOp::StreamFlit { port, vnet, vc } => {
                    let state = &mut self.inputs[port.index()][vnet as usize][vc as usize];
                    let flit = state.flits.pop_front().expect("granted VC lost its flit");
                    state.granted_flits = 0;
                    let out_port = state.out_port.expect("stream flit without route");
                    let out_vc = state.out_vc;
                    if flit.is_tail() {
                        state.active = false;
                        state.out_port = None;
                        self.busy -= 1;
                        self.port_occupancy[port.index()] -= 1;
                    }
                    out.push(RouterOut::CreditUp {
                        in_port: port,
                        vnet,
                        vc,
                        dealloc: flit.is_tail(),
                    });
                    self.emit_flit(cfg, out_port, out_vc, flit, out);
                }
            }
        }
        self.st_scratch = plan;
    }

    fn emit_flit(
        &mut self,
        cfg: &NocConfig,
        out_port: Port,
        vc: u8,
        flit: Flit<T>,
        out: &mut Vec<RouterOut<T>>,
    ) {
        self.stats.crossings.incr();
        // Lookaheads accompany single-flit packets heading to mesh ports.
        if cfg.bypass && flit.is_single() && !out_port.is_local() {
            out.push(RouterOut::La { out_port, flit });
        }
        out.push(RouterOut::Flit { out_port, vc, flit });
    }

    /// Stage 1 (BW) or the bypass path for flits arriving this cycle.
    fn process_arrivals(
        &mut self,
        route: &RouteCtx<'_>,
        cfg: &NocConfig,
        arrivals: &[FlitArrival<T>],
        out: &mut Vec<RouterOut<T>>,
        mut obs: Option<&mut NetObs>,
    ) {
        for a in arrivals {
            let res = self.bypass_res[a.port.index()].take();
            if let Some(res) = res {
                assert_eq!(
                    res.uid, a.flit.packet.uid,
                    "bypass reservation does not match arriving flit"
                );
                // Full bypass: ST immediately; input buffer untouched, so
                // the upstream VC+credit are released right away.
                self.stats.bypassed_flits.incr();
                if let Some(o) = obs.as_deref_mut() {
                    o.on_bypass(
                        self.id.0 as u32,
                        a.port.index() as u8,
                        a.flit.packet.vnet.0,
                        a.flit.packet.uid,
                    );
                }
                out.push(RouterOut::CreditUp {
                    in_port: a.port,
                    vnet: a.flit.packet.vnet.0,
                    vc: a.vc,
                    dealloc: true,
                });
                for (p, dvc) in res.outs {
                    self.emit_flit(cfg, p, dvc, a.flit, out);
                }
                continue;
            }
            if let Some(o) = obs.as_deref_mut() {
                o.on_buffered(a.flit.packet.vnet.0, a.vc);
            }
            self.buffer_flit(route, a);
        }
        // Unconsumed reservations expire (the LA won but we still clear
        // conservatively; arrival is guaranteed one cycle after the LA).
        for r in &mut self.bypass_res {
            *r = None;
        }
    }

    fn buffer_flit(&mut self, route: &RouteCtx<'_>, a: &FlitArrival<T>) {
        self.stats.buffered_flits.incr();
        let vnet = a.flit.packet.vnet.0 as usize;
        let state = &mut self.inputs[a.port.index()][vnet][a.vc as usize];
        if a.flit.is_head() {
            assert!(
                !state.active,
                "VC allocated while occupied (flow-control bug)"
            );
            state.active = true;
            self.busy += 1;
            self.port_occupancy[a.port.index()] += 1;
            let arrived_on = (!a.port.is_local()).then_some(a.port);
            let routed = route.route(self.id, &a.flit.packet, arrived_on);
            state.class_mask = routed.classes;
            if a.flit.is_single() {
                state.remaining = routed.mask;
                state.granted = PortMask::EMPTY;
            } else {
                debug_assert_eq!(routed.mask.len(), 1, "multi-flit packets are unicast");
                state.remaining = routed.mask;
                state.out_port = None;
                state.granted_flits = 0;
            }
        }
        state.flits.push_back(a.flit);
    }

    /// Stage 2: SA-O + VS, merged with lookahead processing. Produces the
    /// ST plan and bypass reservations for next cycle.
    fn allocate_outputs(
        &mut self,
        route: &RouteCtx<'_>,
        cfg: &NocConfig,
        esid: &dyn EsidOracle,
        las: &[LaArrival<T>],
        mut obs: Option<&mut NetObs>,
    ) {
        let mut out_taken = [false; Port::COUNT];
        // Which source owns each input port's crossbar slot next cycle.
        let mut in_owner: [Option<(u8, u8)>; Port::COUNT] = [None; Port::COUNT];
        let mut in_owner_bypass = [false; Port::COUNT];
        let sa_i_reg = std::mem::take(&mut self.sa_i_reg);

        // Class 1: buffered flits in reserved VCs beat everything.
        self.grant_buffered_class(
            route,
            cfg,
            esid,
            &sa_i_reg,
            true,
            &mut out_taken,
            &mut in_owner,
            obs.as_deref_mut(),
        );

        // Class 2: lookaheads, all-or-nothing, rotating priority by port.
        let mut la_reqs = [false; Port::COUNT];
        for la in las {
            la_reqs[la.port.index()] = true;
        }
        let order: Vec<usize> = self.la_arb.order(&la_reqs[..self.n_ports]).collect();
        self.la_arb.rotate();
        for pidx in order {
            let la = las
                .iter()
                .find(|l| l.port.index() == pidx)
                .expect("LA request bitmap out of sync");
            if !self.try_bypass(
                route,
                cfg,
                esid,
                la,
                &mut out_taken,
                &in_owner,
                &mut in_owner_bypass,
                obs.as_deref_mut(),
            ) {
                self.stats.la_failures.incr();
            }
        }

        // Class 3: regular buffered SA-I winners. Ports whose crossbar slot
        // went to a bypass flit are blocked with a sentinel owner.
        for (p, owned) in in_owner_bypass.iter().enumerate() {
            if *owned {
                in_owner[p] = Some((u8::MAX, u8::MAX));
            }
        }
        self.grant_buffered_class(
            route,
            cfg,
            esid,
            &sa_i_reg,
            false,
            &mut out_taken,
            &mut in_owner,
            obs.as_deref_mut(),
        );

        // SA-O stall accounting: an SA-I winner that did not end up owning
        // its input's crossbar slot lost stage II this cycle (to another
        // input port, or to a lookahead bypass holding the sentinel owner).
        if let Some(o) = obs {
            if o.counters {
                for &p in self.ports() {
                    if let Some(win) = sa_i_reg[p.index()] {
                        if in_owner[p.index()] != Some((win.vnet, win.vc)) {
                            o.stall_sa_o += 1;
                        }
                    }
                }
            }
        }
    }

    /// Grants output ports to buffered SA-I winners of one priority class
    /// (`rvc_class` selects reserved-VC winners vs regular winners).
    #[allow(clippy::too_many_arguments)]
    fn grant_buffered_class(
        &mut self,
        route: &RouteCtx<'_>,
        cfg: &NocConfig,
        esid: &dyn EsidOracle,
        sa_i_reg: &[Option<SaIWin>; Port::COUNT],
        rvc_class: bool,
        out_taken: &mut [bool; Port::COUNT],
        in_owner: &mut [Option<(u8, u8)>; Port::COUNT],
        mut obs: Option<&mut NetObs>,
    ) {
        for &out_port in self.ports() {
            if out_taken[out_port.index()] || self.downstream[out_port.index()].is_none() {
                continue;
            }
            // Collect candidate input ports for this output.
            let mut reqs = [false; Port::COUNT];
            for &in_port in self.ports() {
                let Some(win) = sa_i_reg[in_port.index()] else {
                    continue;
                };
                if win.is_rvc != rvc_class {
                    continue;
                }
                // The input crossbar slot must be free or already owned by
                // this same VC (multicast fork).
                if let Some(owner) = in_owner[in_port.index()] {
                    if owner != (win.vnet, win.vc) {
                        continue;
                    }
                }
                if self.candidate_wants(route, cfg, esid, in_port, win, out_port) {
                    reqs[in_port.index()] = true;
                }
            }
            let Some(winner_idx) = self.sa_o_arb[out_port.index()].grant(&reqs[..self.n_ports])
            else {
                continue;
            };
            let in_port = Port::ALL[winner_idx];
            let win = sa_i_reg[in_port.index()].expect("winner without SA-I record");
            self.commit_grant(route, cfg, esid, in_port, win, out_port, obs.as_deref_mut());
            out_taken[out_port.index()] = true;
            in_owner[in_port.index()] = Some((win.vnet, win.vc));
        }
    }

    /// Whether the SA-I winner at `in_port` wants (and could use) `out_port`.
    fn candidate_wants(
        &self,
        route: &RouteCtx<'_>,
        cfg: &NocConfig,
        esid: &dyn EsidOracle,
        in_port: Port,
        win: SaIWin,
        out_port: Port,
    ) -> bool {
        let state = &self.inputs[in_port.index()][win.vnet as usize][win.vc as usize];
        if !state.active || state.flits.is_empty() {
            return false;
        }
        let flit = state.flits.front().expect("checked non-empty");
        let ds = self.downstream[out_port.index()]
            .as_ref()
            .expect("caller checked port presence");
        let class = route.class_for(state.class_mask, out_port);
        if flit.is_single() {
            if !state.remaining.contains(out_port) || state.granted.contains(out_port) {
                return false;
            }
            if let Some(sid) = flit.packet.sid {
                if ds.sid_in_flight(win.vnet, sid) {
                    return false;
                }
            }
            let rvc_ok = flit
                .packet
                .sid
                .map(|s| esid.rvc_eligible(self.id, out_port, s, flit.packet.sid_seq))
                .unwrap_or(false);
            ds.can_alloc(cfg, win.vnet, rvc_ok, class)
        } else {
            // Stream path: one pending ST grant at a time.
            if state.granted_flits != 0 {
                return false;
            }
            match state.out_port {
                // Head not yet routed: the packet's single route must match.
                None => {
                    state.remaining.contains(out_port)
                        && state.flits.front().expect("non-empty").is_head()
                        && ds.can_alloc(cfg, win.vnet, false, class)
                }
                Some(p) => p == out_port && ds.has_credit(win.vnet, state.out_vc),
            }
        }
    }

    /// Applies a grant decided by SA-O: VS allocation + ST scheduling.
    #[allow(clippy::too_many_arguments)]
    fn commit_grant(
        &mut self,
        route: &RouteCtx<'_>,
        cfg: &NocConfig,
        esid: &dyn EsidOracle,
        in_port: Port,
        win: SaIWin,
        out_port: Port,
        obs: Option<&mut NetObs>,
    ) {
        let id = self.id;
        let sid;
        let seq;
        let single;
        let class;
        let uid;
        {
            let state = &self.inputs[in_port.index()][win.vnet as usize][win.vc as usize];
            let flit = state.flits.front().expect("grant on empty VC");
            sid = flit.packet.sid;
            seq = flit.packet.sid_seq;
            single = flit.is_single();
            class = route.class_for(state.class_mask, out_port);
            uid = flit.packet.uid;
        }
        if single {
            let rvc_ok = sid
                .map(|s| esid.rvc_eligible(id, out_port, s, seq))
                .unwrap_or(false);
            let dvc = self.downstream[out_port.index()]
                .as_mut()
                .expect("grant toward absent port")
                .alloc_vc(cfg, win.vnet, sid, rvc_ok, class)
                .expect("candidate_wants guaranteed allocatability");
            if let Some(o) = obs {
                o.on_vc_alloc(id.0 as u32, out_port.index() as u8, win.vnet, dvc, uid);
            }
            let state = &mut self.inputs[in_port.index()][win.vnet as usize][win.vc as usize];
            let first_grant = state.granted.is_empty();
            state.granted.insert(out_port);
            state.grant_vcs[out_port.index()] = dvc;
            if first_grant {
                self.st_plan.push(StOp::MaskFlit {
                    port: in_port,
                    vnet: win.vnet,
                    vc: win.vc,
                });
            }
        } else {
            let needs_route = {
                let state = &self.inputs[in_port.index()][win.vnet as usize][win.vc as usize];
                state.out_port.is_none()
            };
            if needs_route {
                let dvc = self.downstream[out_port.index()]
                    .as_mut()
                    .expect("grant toward absent port")
                    .alloc_vc(cfg, win.vnet, None, false, class)
                    .expect("candidate_wants guaranteed allocatability");
                if let Some(o) = obs {
                    o.on_vc_alloc(id.0 as u32, out_port.index() as u8, win.vnet, dvc, uid);
                }
                let state = &mut self.inputs[in_port.index()][win.vnet as usize][win.vc as usize];
                state.out_port = Some(out_port);
                state.out_vc = dvc;
            } else {
                let vc = self.inputs[in_port.index()][win.vnet as usize][win.vc as usize].out_vc;
                self.downstream[out_port.index()]
                    .as_mut()
                    .expect("grant toward absent port")
                    .take_credit(win.vnet, vc);
            }
            let state = &mut self.inputs[in_port.index()][win.vnet as usize][win.vc as usize];
            state.granted_flits = 1;
            self.st_plan.push(StOp::StreamFlit {
                port: in_port,
                vnet: win.vnet,
                vc: win.vc,
            });
        }
    }

    /// Attempts an all-or-nothing bypass setup for a lookahead.
    #[allow(clippy::too_many_arguments)]
    fn try_bypass(
        &mut self,
        route: &RouteCtx<'_>,
        cfg: &NocConfig,
        esid: &dyn EsidOracle,
        la: &LaArrival<T>,
        out_taken: &mut [bool; Port::COUNT],
        in_owner: &[Option<(u8, u8)>; Port::COUNT],
        in_owner_bypass: &mut [bool; Port::COUNT],
        mut obs: Option<&mut NetObs>,
    ) -> bool {
        if !cfg.bypass {
            return false;
        }
        // The crossbar input slot must be free next cycle.
        if in_owner[la.port.index()].is_some() || in_owner_bypass[la.port.index()] {
            return false;
        }
        let arrived_on = (!la.port.is_local()).then_some(la.port);
        let routed = route.route(self.id, &la.flit.packet, arrived_on);
        let vnet = la.flit.packet.vnet.0;
        let sid = la.flit.packet.sid;
        let seq = la.flit.packet.sid_seq;
        // Check every output first (all-or-nothing), then allocate.
        for p in routed.mask.iter() {
            if out_taken[p.index()] {
                return false;
            }
            let Some(ds) = self.downstream[p.index()].as_ref() else {
                return false;
            };
            if let Some(s) = sid {
                if ds.sid_in_flight(vnet, s) {
                    return false;
                }
            }
            let rvc_ok = sid
                .map(|s| esid.rvc_eligible(self.id, p, s, seq))
                .unwrap_or(false);
            if !ds.can_alloc(cfg, vnet, rvc_ok, route.class_for(routed.classes, p)) {
                return false;
            }
        }
        let mut outs = Vec::with_capacity(routed.mask.len());
        for p in routed.mask.iter() {
            let rvc_ok = sid
                .map(|s| esid.rvc_eligible(self.id, p, s, seq))
                .unwrap_or(false);
            let dvc = self.downstream[p.index()]
                .as_mut()
                .expect("checked above")
                .alloc_vc(cfg, vnet, sid, rvc_ok, route.class_for(routed.classes, p))
                .expect("checked above");
            if let Some(o) = obs.as_deref_mut() {
                o.on_vc_alloc(
                    self.id.0 as u32,
                    p.index() as u8,
                    vnet,
                    dvc,
                    la.flit.packet.uid,
                );
            }
            outs.push((p, dvc));
            out_taken[p.index()] = true;
        }
        in_owner_bypass[la.port.index()] = true;
        self.bypass_res[la.port.index()] = Some(BypassRes {
            uid: la.flit.packet.uid,
            outs,
        });
        true
    }

    /// Stage 1b: per input port, arbitrate among VCs for the crossbar input.
    ///
    /// A VC only *requests* the switch when it could actually progress
    /// (downstream VC/credit obtainable and no same-SID conflict). This
    /// matters most for the reserved VC, which wins SA-I outright: letting
    /// a blocked rVC flit hold the input slot would starve the port.
    fn sa_i(
        &mut self,
        route: &RouteCtx<'_>,
        cfg: &NocConfig,
        esid: &dyn EsidOracle,
        mut obs: Option<&mut NetObs>,
    ) {
        for in_port in self.ports() {
            let in_port = *in_port;
            let pidx = in_port.index();
            // No resident packet on any VC of this port: every request bit
            // is false, and an all-false grant leaves the arbiter pointer
            // where it is, so the whole scan can be skipped exactly.
            if self.port_occupancy[pidx] == 0 {
                self.sa_i_reg[pidx] = None;
                continue;
            }
            // Stall accounting runs on pure `&self` queries, so it can
            // never perturb arbiter state or the outcome below.
            if let Some(o) = obs.as_deref_mut() {
                if o.counters {
                    self.count_port_stalls(route, cfg, esid, in_port, o);
                }
            }
            // Reserved VCs win outright.
            let mut rvc_win = None;
            for (n, vcfg) in cfg.vnets.iter().enumerate() {
                if !vcfg.ordered {
                    continue;
                }
                let rvc = vcfg.rvc_index();
                if self.vc_requests(route, cfg, esid, n as u8, rvc, in_port) {
                    rvc_win = Some(SaIWin {
                        vnet: n as u8,
                        vc: rvc,
                        is_rvc: true,
                    });
                    break;
                }
            }
            if let Some(win) = rvc_win {
                self.sa_i_reg[pidx] = Some(win);
                continue;
            }
            // Regular VCs: rotating priority over the (precomputed)
            // flattened VC list, request bits in the reused scratch vector.
            let mut reqs = std::mem::take(&mut self.sa_i_reqs);
            for (flat, &(n, vc, is_rvc)) in self.vc_index.iter().enumerate() {
                reqs[flat] = !is_rvc && self.vc_requests(route, cfg, esid, n, vc, in_port);
            }
            self.sa_i_reg[pidx] = self.sa_i_arb[pidx].grant(&reqs).map(|w| {
                let (vnet, vc, _) = self.vc_index[w];
                SaIWin {
                    vnet,
                    vc,
                    is_rvc: false,
                }
            });
            self.sa_i_reqs = reqs;
        }
    }

    /// Renders occupied input VCs and SID trackers for deadlock debugging.
    pub(crate) fn debug_occupancy(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for &port in self.ports() {
            for (n, per_vnet) in self.inputs[port.index()].iter().enumerate() {
                for (vc, state) in per_vnet.iter().enumerate() {
                    if state.active {
                        let front = state.flits.front().map(|f| {
                            format!(
                                "uid={} sid={:?} flits={}",
                                f.packet.uid,
                                f.packet.sid,
                                state.flits.len()
                            )
                        });
                        lines.push(format!(
                            "  in {port} v{n} vc{vc}: {:?} remaining={:?} granted={:?} out={:?}",
                            front, state.remaining, state.granted, state.out_port
                        ));
                    }
                }
            }
        }
        for &port in self.ports() {
            if let Some(ds) = &self.downstream[port.index()] {
                let mut desc = Vec::new();
                for (n, per_vnet) in ds.sid_in_vc.iter().enumerate() {
                    for (vc, sid) in per_vnet.iter().enumerate() {
                        let free = ds.free_vc[n][vc];
                        let cr = ds.credits[n][vc];
                        if !free || sid.is_some() {
                            desc.push(format!("v{n}vc{vc}:{:?}cr{cr}", sid.map(|s| s.0)));
                        }
                    }
                }
                if !desc.is_empty() {
                    lines.push(format!("  out {port} busy: {}", desc.join(" ")));
                }
            }
        }
        lines
    }

    /// Whether VC (`vnet`, `vc`) at `in_port` requests the switch: it holds
    /// a flit with somewhere to go *and* the downstream resources for at
    /// least one of its pending outputs are currently obtainable.
    fn vc_requests(
        &self,
        route: &RouteCtx<'_>,
        cfg: &NocConfig,
        esid: &dyn EsidOracle,
        vnet: u8,
        vc: u8,
        in_port: Port,
    ) -> bool {
        let state = &self.inputs[in_port.index()][vnet as usize][vc as usize];
        if !state.active || state.flits.is_empty() {
            return false;
        }
        let flit = state.flits.front().expect("checked non-empty");
        if flit.is_single() {
            let mut pending = state.remaining;
            for p in state.granted.iter() {
                pending.remove(p);
            }
            pending.iter().any(|p| {
                let Some(ds) = self.downstream[p.index()].as_ref() else {
                    return false;
                };
                if let Some(sid) = flit.packet.sid {
                    if ds.sid_in_flight(vnet, sid) {
                        return false;
                    }
                }
                let rvc_ok = flit
                    .packet
                    .sid
                    .map(|s| esid.rvc_eligible(self.id, p, s, flit.packet.sid_seq))
                    .unwrap_or(false);
                ds.can_alloc(cfg, vnet, rvc_ok, route.class_for(state.class_mask, p))
            })
        } else {
            if state.flits.len() <= state.granted_flits as usize {
                return false;
            }
            match state.out_port {
                None => state.remaining.iter().any(|p| {
                    self.downstream[p.index()].as_ref().is_some_and(|ds| {
                        ds.can_alloc(cfg, vnet, false, route.class_for(state.class_mask, p))
                    })
                }),
                Some(p) => self.downstream[p.index()]
                    .as_ref()
                    .is_some_and(|ds| ds.has_credit(vnet, state.out_vc)),
            }
        }
    }

    /// Stall accounting for one input port (counters mode): every VC that
    /// requests SA-I except the eventual winner loses stage I; an active VC
    /// with somewhere to go that *cannot even request* is stalled in VC
    /// allocation (head blocked on a free VC or a SID conflict) or on
    /// credits (body flit of a routed stream). Pure `&self` reads only.
    fn count_port_stalls(
        &self,
        route: &RouteCtx<'_>,
        cfg: &NocConfig,
        esid: &dyn EsidOracle,
        in_port: Port,
        o: &mut NetObs,
    ) {
        let mut requesters = 0u64;
        for &(n, vc, _) in &self.vc_index {
            let state = &self.inputs[in_port.index()][n as usize][vc as usize];
            if !state.active {
                continue;
            }
            if self.vc_requests(route, cfg, esid, n, vc, in_port) {
                requesters += 1;
            } else {
                match Self::blocked_cause(state) {
                    Some(Stall::VcAlloc) => o.stall_vc_alloc += 1,
                    Some(Stall::Credit) => o.stall_credit += 1,
                    None => {}
                }
            }
        }
        // Exactly one requester wins the port's crossbar slot.
        o.stall_sa_i += requesters.saturating_sub(1);
    }

    /// Why an active, non-requesting VC is not progressing — `None` when it
    /// is merely waiting on its own granted switch traversals.
    fn blocked_cause(state: &VcState<T>) -> Option<Stall> {
        let flit = state.flits.front()?;
        if flit.is_single() {
            let mut pending = state.remaining;
            for p in state.granted.iter() {
                pending.remove(p);
            }
            // A pending output it could not request = the downstream VC
            // allocator (no free VC in its class, or a SID conflict).
            (!pending.is_empty()).then_some(Stall::VcAlloc)
        } else {
            if state.flits.len() <= state.granted_flits as usize {
                return None;
            }
            match state.out_port {
                // Head waiting for a downstream VC.
                None => Some(Stall::VcAlloc),
                // Routed stream with buffered flits but no request: the
                // only blocker on a fixed (port, VC) is credits.
                Some(_) => Some(Stall::Credit),
            }
        }
    }
}

/// Stall cause of a blocked (non-requesting) input VC.
enum Stall {
    VcAlloc,
    Credit,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Mesh, Topology, Torus};

    struct NoRvc;
    impl EsidOracle for NoRvc {
        fn rvc_eligible(&self, _: RouterId, _: Port, _: Sid, _: u16) -> bool {
            false
        }
    }

    fn cfg() -> NocConfig {
        NocConfig::scorpio()
    }

    #[test]
    fn downstream_vc_allocation_prefers_regular() {
        let c = cfg();
        let mut ds = DownstreamState::new(&c);
        // GO-REQ: 4 regular + 1 rVC.
        for expected in 0..4u8 {
            let vc = ds.alloc_vc(&c, 0, Some(Sid(expected as u16)), true, VcClass::Any);
            assert_eq!(vc, Some(expected));
        }
        // Regular exhausted: rVC only if eligible.
        assert_eq!(ds.alloc_vc(&c, 0, Some(Sid(9)), false, VcClass::Any), None);
        assert_eq!(
            ds.alloc_vc(&c, 0, Some(Sid(9)), true, VcClass::Any),
            Some(4)
        );
        assert_eq!(ds.alloc_vc(&c, 0, Some(Sid(10)), true, VcClass::Any), None);
    }

    #[test]
    fn dateline_classes_partition_the_regular_vcs() {
        let c = cfg();
        let mut ds = DownstreamState::new(&c);
        // GO-REQ has 4 regular VCs: class 0 may use {0,1}, class 1 {2,3}.
        assert_eq!(ds.alloc_vc(&c, 0, None, false, VcClass::C0), Some(0));
        assert_eq!(ds.alloc_vc(&c, 0, None, false, VcClass::C1), Some(2));
        assert_eq!(ds.alloc_vc(&c, 0, None, false, VcClass::C0), Some(1));
        assert_eq!(ds.alloc_vc(&c, 0, None, false, VcClass::C0), None);
        assert!(ds.can_alloc(&c, 0, false, VcClass::C1));
        assert!(!ds.can_alloc(&c, 0, false, VcClass::C0));
        assert_eq!(ds.alloc_vc(&c, 0, None, false, VcClass::C1), Some(3));
        assert_eq!(ds.alloc_vc(&c, 0, None, false, VcClass::C1), None);
    }

    #[test]
    fn downstream_credit_roundtrip() {
        let c = cfg();
        let mut ds = DownstreamState::new(&c);
        let vc = ds.alloc_vc(&c, 1, None, false, VcClass::Any).unwrap();
        assert!(ds.has_credit(1, vc)); // depth 3: 2 credits left
        ds.take_credit(1, vc);
        ds.take_credit(1, vc);
        assert!(!ds.has_credit(1, vc));
        ds.on_credit(&c, 1, vc, false);
        assert!(ds.has_credit(1, vc));
        // Dealloc frees the VC for reallocation.
        ds.on_credit(&c, 1, vc, false);
        ds.on_credit(&c, 1, vc, true);
        assert_eq!(ds.alloc_vc(&c, 1, None, false, VcClass::Any), Some(vc));
    }

    #[test]
    fn sid_tracker_blocks_same_sid() {
        let c = cfg();
        let mut ds = DownstreamState::new(&c);
        ds.alloc_vc(&c, 0, Some(Sid(5)), false, VcClass::Any)
            .unwrap();
        assert!(ds.sid_in_flight(0, Sid(5)));
        assert!(!ds.sid_in_flight(0, Sid(6)));
    }

    #[test]
    fn router_construction_ports() {
        let topo: Topology = Mesh::scorpio_chip().into();
        let tables = RoutingTables::build(&topo);
        let c = cfg();
        let corner: Router<u32> = Router::new(&tables, &c, RouterId(0));
        // NW corner: East, South, Tile, Mc.
        assert!(corner.downstream[Port::East.index()].is_some());
        assert!(corner.downstream[Port::South.index()].is_some());
        assert!(corner.downstream[Port::North.index()].is_none());
        assert!(corner.downstream[Port::West.index()].is_none());
        assert!(corner.downstream[Port::Tile.index()].is_some());
        assert!(corner.downstream[Port::Mc.index()].is_some());

        let center: Router<u32> = Router::new(&tables, &c, RouterId(14));
        assert!(center.downstream[Port::Mc.index()].is_none());
        assert!(center.is_idle());
    }

    #[test]
    fn torus_router_has_all_four_mesh_ports() {
        let topo: Topology = Torus::square_with_corner_mcs(4).into();
        let tables = RoutingTables::build(&topo);
        let corner: Router<u32> = Router::new(&tables, &cfg(), RouterId(0));
        for port in [Port::North, Port::South, Port::East, Port::West] {
            assert!(corner.downstream[port.index()].is_some(), "{port}");
        }
    }

    #[test]
    fn idle_router_tick_emits_nothing() {
        let topo: Topology = Mesh::scorpio_chip().into();
        let tables = RoutingTables::build(&topo);
        let c = cfg();
        let mut r: Router<u32> = Router::new(&tables, &c, RouterId(14));
        let ctx = RouteCtx {
            tables: &tables,
            topo: &topo,
            use_tables: true,
            datelines: false,
        };
        let mut out = Vec::new();
        r.tick(&ctx, &c, &NoRvc, &[], &[], &[], &mut out, None);
        assert!(out.is_empty());
        assert!(r.is_idle());
    }
}
