//! A persistent worker pool for intra-run parallelism.
//!
//! The simulator's inner loop runs millions of cycles, and a parallel tick
//! is worth having only if dispatching it costs less than the tick itself —
//! `std::thread::scope` spawns OS threads per call, which at tens of
//! microseconds per cycle would swamp the work. [`TickPool`] keeps its
//! workers alive across cycles: dispatch is one mutex round-trip plus an
//! atomic job cursor, and the calling thread participates in draining the
//! jobs instead of blocking.
//!
//! Determinism is the caller's problem by construction: the pool only ever
//! runs a caller-supplied `Fn(usize)` over a job-index range, so any
//! ordering discipline (commit results in index order, keep shards
//! disjoint) lives at the call site. The pool guarantees that all jobs
//! have finished — and their writes are visible — when [`TickPool::run`]
//! returns, and that a panicking job surfaces as a panic on the caller.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A dispatched batch: a type-erased closure plus the job count. The
/// pointer refers into the caller's stack frame; it is valid for exactly
/// the duration of the [`TickPool::run`] call that published it, which is
/// also exactly the window in which workers may dereference it (`run`
/// does not return until every worker has checked back in).
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    call: unsafe fn(*const (), usize),
    n_jobs: usize,
}

// SAFETY: `data` points at a `F: Fn(usize) + Sync` owned by the `run`
// caller, which blocks until all workers are done with it; `call` is the
// monomorphized trampoline for that same `F`.
unsafe impl Send for Job {}

struct State {
    /// Bumped once per dispatched batch; workers run a batch exactly once.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have finished the current batch.
    finished: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: a new batch was published (or shutdown).
    start: Condvar,
    /// Signals the dispatcher: a worker finished the batch.
    done: Condvar,
    /// Next job index to claim; shared work-stealing cursor.
    cursor: AtomicUsize,
    /// Set when any job panicked; `run` re-panics on the caller.
    panicked: AtomicBool,
}

/// A pool of `n` persistent worker threads that, together with the calling
/// thread, drain batches of independent jobs. See the module docs.
pub struct TickPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for TickPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TickPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl TickPool {
    /// Spawns `threads` workers (the calling thread makes it `threads + 1`
    /// active lanes during a [`TickPool::run`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero (a zero-worker pool is a plain loop;
    /// callers should not construct one) or if thread spawning fails.
    pub fn new(threads: usize) -> TickPool {
        assert!(threads > 0, "a TickPool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                finished: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            cursor: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("scorpio-tick".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a tick worker")
            })
            .collect();
        TickPool { shared, workers }
    }

    /// Number of spawned workers (excluding the calling thread).
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(0), f(1), …, f(n_jobs - 1)` across the pool plus the
    /// calling thread, in unspecified order, returning once every call has
    /// finished (all writes made by the jobs are visible to the caller).
    ///
    /// # Panics
    ///
    /// Panics if any job panicked (after all jobs have drained, so shared
    /// state is never abandoned mid-batch).
    pub fn run<F: Fn(usize) + Sync>(&self, n_jobs: usize, f: &F) {
        if n_jobs == 0 {
            return;
        }
        unsafe fn call_f<F: Fn(usize)>(data: *const (), i: usize) {
            // SAFETY: `data` is the `&F` published by this very `run`
            // invocation (see `Job`); `run` has not returned yet.
            unsafe { (*data.cast::<F>())(i) }
        }
        let job = Job {
            data: (f as *const F).cast(),
            call: call_f::<F>,
            n_jobs,
        };
        {
            let mut st = self.shared.state.lock().expect("tick pool poisoned");
            // All workers from the previous batch have checked back in
            // (run waits for that below), so resetting the cursor cannot
            // race a straggler.
            self.shared.cursor.store(0, Ordering::Relaxed);
            st.job = Some(job);
            st.finished = 0;
            st.epoch += 1;
            self.shared.start.notify_all();
        }
        // The dispatcher is also a lane: claim jobs until none remain.
        loop {
            let i = self.shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n_jobs {
                break;
            }
            run_one(&self.shared, job, i);
        }
        let mut st = self.shared.state.lock().expect("tick pool poisoned");
        while st.finished < self.workers.len() {
            st = self.shared.done.wait(st).expect("tick pool poisoned");
        }
        st.job = None;
        drop(st);
        if self.shared.panicked.swap(false, Ordering::Relaxed) {
            panic!("a tick-pool job panicked");
        }
    }
}

impl Drop for TickPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("tick pool poisoned");
            st.shutdown = true;
            self.shared.start.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Executes one job, converting a panic into the shared flag so siblings
/// finish the batch and the dispatcher re-panics deterministically.
fn run_one(shared: &Shared, job: Job, i: usize) {
    let r = catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: dispatch discipline per `Job`'s invariant.
        unsafe { (job.call)(job.data, i) }
    }));
    if r.is_err() {
        shared.panicked.store(true, Ordering::Relaxed);
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("tick pool poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("a published epoch carries a job");
                }
                st = shared.start.wait(st).expect("tick pool poisoned");
            }
        };
        loop {
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= job.n_jobs {
                break;
            }
            run_one(shared, job, i);
        }
        let mut st = shared.state.lock().expect("tick pool poisoned");
        st.finished += 1;
        shared.done.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_job_exactly_once() {
        let pool = TickPool::new(3);
        for n in [0usize, 1, 2, 7, 64, 1000] {
            let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn batches_reuse_the_pool() {
        let pool = TickPool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..500 {
            pool.run(8, &|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 500 * (0..8).sum::<u64>());
    }

    #[test]
    fn worker_writes_are_visible_after_run() {
        let pool = TickPool::new(4);
        let mut data = vec![0u64; 256];
        // Disjoint &mut access via raw parts, the shard-tick pattern.
        struct Cells(*mut u64);
        unsafe impl Sync for Cells {}
        let cells = Cells(data.as_mut_ptr());
        let cells = &cells;
        pool.run(256, &|i| {
            // SAFETY: each job index touches a distinct element.
            unsafe { *cells.0.add(i) = i as u64 * 3 };
        });
        assert!(data.iter().enumerate().all(|(i, &v)| v == i as u64 * 3));
    }

    #[test]
    fn job_panic_propagates_to_the_dispatcher() {
        let pool = TickPool::new(2);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, &|i| {
                assert!(i != 9, "boom");
            });
        }));
        assert!(r.is_err());
        // The pool survives a panicked batch.
        let ok = AtomicU64::new(0);
        pool.run(4, &|_| {
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 4);
    }
}
