//! Rotating-priority (round-robin) arbitration.

/// A rotating-priority arbiter over `n` requesters.
///
/// Grants the lowest-index requester at or after the priority pointer
/// (wrapping), then advances the pointer past the winner so every requester
/// is eventually served. This is the arbiter used for SA-I (among VCs),
/// SA-O (among input ports) and lookahead conflicts in the SCORPIO router,
/// and — seeded identically at every node — for the notification tracker's
/// globally consistent SID ordering.
///
/// # Examples
///
/// ```
/// use scorpio_noc::RotatingArbiter;
///
/// let mut arb = RotatingArbiter::new(4);
/// assert_eq!(arb.grant(&[true, true, false, false]), Some(0));
/// // Pointer moved past 0, so 1 wins next even though 0 still requests.
/// assert_eq!(arb.grant(&[true, true, false, false]), Some(1));
/// assert_eq!(arb.grant(&[false; 4]), None);
/// ```
#[derive(Debug, Clone)]
pub struct RotatingArbiter {
    n: usize,
    ptr: usize,
}

impl RotatingArbiter {
    /// Creates an arbiter over `n` requesters with priority at index 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "arbiter needs at least one requester");
        RotatingArbiter { n, ptr: 0 }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has zero requesters (never true by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Current priority pointer (highest-priority index).
    pub fn pointer(&self) -> usize {
        self.ptr
    }

    /// Grants among `requests` and advances the pointer past the winner.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != self.len()`.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        let winner = self.peek(requests)?;
        self.ptr = (winner + 1) % self.n;
        Some(winner)
    }

    /// Returns the winner without updating the pointer.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len() != self.len()`.
    pub fn peek(&self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.n, "request vector length mismatch");
        (0..self.n)
            .map(|k| (self.ptr + k) % self.n)
            .find(|&idx| requests[idx])
    }

    /// Enumerates all requesting indices in priority order (used by the
    /// notification tracker to expand a merged notification into the global
    /// SID order).
    pub fn order<'a>(&self, requests: &'a [bool]) -> impl Iterator<Item = usize> + 'a {
        assert_eq!(requests.len(), self.n, "request vector length mismatch");
        let (ptr, n) = (self.ptr, self.n);
        (0..n).map(move |k| (ptr + k) % n).filter(|&i| requests[i])
    }

    /// Rotates priority by one position (notification tracker fairness
    /// update, applied once per processed time window).
    pub fn rotate(&mut self) {
        self.ptr = (self.ptr + 1) % self.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_fairness() {
        let mut arb = RotatingArbiter::new(3);
        let all = [true, true, true];
        let wins: Vec<_> = (0..6).map(|_| arb.grant(&all).unwrap()).collect();
        assert_eq!(wins, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn skips_non_requesters() {
        let mut arb = RotatingArbiter::new(4);
        assert_eq!(arb.grant(&[false, false, true, false]), Some(2));
        assert_eq!(arb.pointer(), 3);
        assert_eq!(arb.grant(&[true, false, false, false]), Some(0));
    }

    #[test]
    fn no_request_no_grant_no_pointer_move() {
        let mut arb = RotatingArbiter::new(2);
        arb.grant(&[false, true]);
        let ptr = arb.pointer();
        assert_eq!(arb.grant(&[false, false]), None);
        assert_eq!(arb.pointer(), ptr);
    }

    #[test]
    fn peek_does_not_advance() {
        let arb = RotatingArbiter::new(2);
        assert_eq!(arb.peek(&[true, true]), Some(0));
        assert_eq!(arb.peek(&[true, true]), Some(0));
    }

    #[test]
    fn order_enumerates_from_pointer() {
        let mut arb = RotatingArbiter::new(4);
        arb.rotate(); // ptr = 1
        let reqs = [true, false, true, true];
        let order: Vec<_> = arb.order(&reqs).collect();
        assert_eq!(order, vec![2, 3, 0]);
    }

    #[test]
    fn rotate_wraps() {
        let mut arb = RotatingArbiter::new(2);
        arb.rotate();
        arb.rotate();
        assert_eq!(arb.pointer(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_request_length_panics() {
        let mut arb = RotatingArbiter::new(2);
        let _ = arb.grant(&[true]);
    }

    #[test]
    #[should_panic(expected = "at least one requester")]
    fn zero_requesters_panics() {
        let _ = RotatingArbiter::new(0);
    }
}
