//! Main-network configuration.

use crate::flit::data_packet_flits;

/// Configuration of one virtual network (message class).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VnetCfg {
    /// Human-readable name for reports ("GO-REQ", "UO-RESP", ...).
    pub name: &'static str,
    /// Number of regular virtual channels per input port.
    pub vcs: u8,
    /// Buffer depth (flits) of each VC.
    pub depth: u8,
    /// Whether this class carries globally ordered requests: adds one
    /// reserved VC (rVC) per input port, SID-tracker point-to-point
    /// ordering, and ESID-gated delivery at the NIC.
    pub ordered: bool,
}

impl VnetCfg {
    /// Total VCs per input port, including the reserved VC when ordered.
    pub fn total_vcs(&self) -> usize {
        self.vcs as usize + usize::from(self.ordered)
    }

    /// The VC index of the reserved VC (one past the regular VCs).
    ///
    /// Meaningful only when [`VnetCfg::ordered`] is true.
    pub fn rvc_index(&self) -> u8 {
        self.vcs
    }
}

/// Configuration of the main network.
///
/// Defaults ([`NocConfig::scorpio`]) match Table 1 of the paper: 16-byte
/// channels, a GO-REQ class with 4 single-flit VCs (+ rVC) and a UO-RESP
/// class with 2 three-flit VCs, lookahead bypassing enabled.
///
/// # Examples
///
/// ```
/// use scorpio_noc::NocConfig;
///
/// let cfg = NocConfig::scorpio();
/// assert_eq!(cfg.vnets.len(), 2);
/// assert_eq!(cfg.data_flits(), 3); // 16-byte channel, 32-byte lines
/// let wide = NocConfig { channel_bytes: 32, ..NocConfig::scorpio() };
/// assert_eq!(wide.data_flits(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NocConfig {
    /// Channel (link/flit) width in bytes. The chip uses 137 bits ≈ 16 B.
    pub channel_bytes: u32,
    /// Cache-line size in bytes (32 on the chip).
    pub line_bytes: u32,
    /// The virtual networks, indexed by `VnetId`.
    pub vnets: Vec<VnetCfg>,
    /// Enable lookahead bypassing (single-cycle router traversal).
    pub bypass: bool,
    /// Depth of each per-vnet NIC injection queue.
    pub inject_queue_depth: usize,
    /// Track per-packet broadcast delivery counts (needed by the
    /// exactly-once tests; small HashMap cost — disable for big sweeps).
    pub track_deliveries: bool,
}

impl NocConfig {
    /// The 36-core chip configuration from Table 1.
    pub fn scorpio() -> NocConfig {
        NocConfig {
            channel_bytes: 16,
            line_bytes: 32,
            vnets: vec![
                VnetCfg {
                    name: "GO-REQ",
                    vcs: 4,
                    depth: 1,
                    ordered: true,
                },
                VnetCfg {
                    name: "UO-RESP",
                    vcs: 2,
                    depth: 3,
                    ordered: false,
                },
            ],
            bypass: true,
            inject_queue_depth: 8,
            track_deliveries: true,
        }
    }

    /// The same fabric with ordering support stripped, plus a forward class:
    /// what the directory baselines run on ("all architectures share the
    /// same NoC minus the ordered virtual network and notification
    /// network", Section 5.1).
    pub fn directory() -> NocConfig {
        NocConfig {
            channel_bytes: 16,
            line_bytes: 32,
            vnets: vec![
                VnetCfg {
                    name: "REQ",
                    vcs: 4,
                    depth: 1,
                    ordered: false,
                },
                VnetCfg {
                    name: "FWD",
                    vcs: 2,
                    depth: 1,
                    ordered: false,
                },
                VnetCfg {
                    name: "RESP",
                    vcs: 2,
                    depth: 3,
                    ordered: false,
                },
            ],
            bypass: true,
            inject_queue_depth: 8,
            track_deliveries: true,
        }
    }

    /// Flits in a cache-line data packet at this channel width.
    pub fn data_flits(&self) -> u8 {
        data_packet_flits(self.channel_bytes, self.line_bytes)
    }

    /// The configuration of virtual network `vnet`.
    ///
    /// # Panics
    ///
    /// Panics if `vnet` is out of range.
    pub fn vnet(&self, vnet: crate::VnetId) -> &VnetCfg {
        &self.vnets[vnet.index()]
    }

    /// Validates internal consistency; call after hand-editing fields.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.channel_bytes == 0 {
            return Err("channel width must be non-zero".into());
        }
        if self.line_bytes == 0 {
            return Err("line size must be non-zero".into());
        }
        if self.vnets.is_empty() {
            return Err("at least one virtual network is required".into());
        }
        if self.vnets.len() > 8 {
            return Err("at most 8 virtual networks are supported".into());
        }
        for (i, v) in self.vnets.iter().enumerate() {
            if v.vcs == 0 {
                return Err(format!("vnet {i} ({}) has zero VCs", v.name));
            }
            if v.depth == 0 {
                return Err(format!("vnet {i} ({}) has zero-depth VCs", v.name));
            }
        }
        if self.inject_queue_depth == 0 {
            return Err("injection queue depth must be non-zero".into());
        }
        Ok(())
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig::scorpio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VnetId;

    #[test]
    fn scorpio_defaults_match_table1() {
        let cfg = NocConfig::scorpio();
        assert_eq!(cfg.channel_bytes, 16);
        let goreq = cfg.vnet(VnetId::GO_REQ);
        assert_eq!((goreq.vcs, goreq.depth, goreq.ordered), (4, 1, true));
        assert_eq!(goreq.total_vcs(), 5);
        assert_eq!(goreq.rvc_index(), 4);
        let uoresp = cfg.vnet(VnetId::UO_RESP);
        assert_eq!((uoresp.vcs, uoresp.depth, uoresp.ordered), (2, 3, false));
        assert_eq!(uoresp.total_vcs(), 2);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn directory_has_three_unordered_classes() {
        let cfg = NocConfig::directory();
        assert_eq!(cfg.vnets.len(), 3);
        assert!(cfg.vnets.iter().all(|v| !v.ordered));
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validation_catches_errors() {
        let mut cfg = NocConfig::scorpio();
        cfg.channel_bytes = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = NocConfig::scorpio();
        cfg.vnets[0].vcs = 0;
        assert!(cfg.validate().unwrap_err().contains("zero VCs"));

        let mut cfg = NocConfig::scorpio();
        cfg.vnets.clear();
        assert!(cfg.validate().is_err());

        let mut cfg = NocConfig::scorpio();
        cfg.vnets[1].depth = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn default_is_scorpio() {
        assert_eq!(NocConfig::default(), NocConfig::scorpio());
    }
}
