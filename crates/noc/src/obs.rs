//! Observability: per-plane counters, latency histograms and a
//! deterministic flit-event trace.
//!
//! The network carries an optional [`NetObs`] sink (one per plane). When
//! absent — the default — every hook in the hot path is a single
//! `Option::is_none` branch and nothing is allocated or recorded, so
//! reports stay byte-identical to a build without the layer. When present,
//! the sink accumulates:
//!
//! * **Counters** (`ObsConfig::counters`): per-router/per-output-port link
//!   crossings, a buffer-occupancy integral (packet-cycles resident in
//!   input VCs), per-VC buffered-flit counts, stall causes split by arbitration
//!   stage (SA-I losses, SA-O losses, VC-allocation blocks, credit blocks),
//!   and latency histograms — packet latency per message class
//!   ([`LogHistogram`]) and per-endpoint injection wait.
//! * **Trace** (`ObsConfig::trace`): a bounded stream of [`TraceEvent`]s
//!   (inject / vc-alloc / hop / bypass / eject, plus the system layer's
//!   ordered-commit) with a per-plane monotonic sequence number. Events
//!   from all planes merge-sort on [`TraceEvent::sort_key`] into a single
//!   deterministic stream; because each plane keeps an exact prefix of its
//!   own stream, truncating the merged stream to the cap reproduces the
//!   exact global prefix regardless of plane count or thread count.
//!
//! Every hook sits in code that executes identically under the active-set,
//! always-scan and coord-route engines (after the shared idle-skip check),
//! so enabling observability never perturbs simulated behavior and its
//! output is engine-invariant. Counter-classification paths only ever call
//! `&self` router queries — arbiter state is never touched.

use crate::config::NocConfig;
use crate::topology::Port;
use scorpio_sim::stats::LogHistogram;

/// What to record. Passed to [`crate::Network::set_observability`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record counters and latency histograms.
    pub counters: bool,
    /// Record the flit-event trace.
    pub trace: bool,
    /// Per-plane cap on retained trace events; later events are counted
    /// as dropped. Also the cap on the merged stream.
    pub trace_limit: usize,
    /// Window length, in cycles, for epoch-bucketed time-series
    /// telemetry. `0` (the default in both constructors) disables
    /// windowing.
    pub window_cycles: u64,
}

impl ObsConfig {
    /// Counters and histograms only — no trace.
    pub fn counters_only() -> ObsConfig {
        ObsConfig {
            counters: true,
            trace: false,
            trace_limit: 0,
            window_cycles: 0,
        }
    }

    /// Counters plus a trace capped at `limit` events.
    pub fn with_trace(limit: usize) -> ObsConfig {
        ObsConfig {
            counters: true,
            trace: true,
            trace_limit: limit,
            window_cycles: 0,
        }
    }

    /// Adds epoch-bucketed windowed telemetry with `window_cycles`-cycle
    /// windows, builder-style.
    #[must_use]
    pub fn with_windows(mut self, window_cycles: u64) -> ObsConfig {
        self.window_cycles = window_cycles;
        self
    }
}

/// One window's (epoch's) telemetry for one plane: everything is derived
/// from event timestamps (`epoch = cycle / window_cycles`), so leaped or
/// idle-skipped cycles — during which the plane is quiescent by
/// construction — contribute exactly zero and the cells stay
/// byte-identical across engines and worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowCell {
    /// Packets that entered an injection queue this window.
    pub injected: u64,
    /// Tail flits consumed at their destination this window (bucketed by
    /// ejection cycle; the packet may have been injected earlier).
    pub ejected: u64,
    /// Packet latency of this window's ejections.
    pub latency: LogHistogram,
    /// Injection-queue waits granted this window: sample count…
    pub wait_count: u64,
    /// …their sum…
    pub wait_sum: u64,
    /// …and the largest single wait.
    pub wait_max: u64,
    /// Packet-cycles resident in input VCs this window.
    pub buffer_integral: u64,
    /// Per-endpoint `(count, sum)` of injection waits granted this
    /// window — the starvation signal: a windowed per-endpoint mean.
    pub ep_wait: Vec<(u64, u64)>,
}

impl WindowCell {
    /// An empty cell with per-endpoint wait slots for `endpoints`
    /// endpoints (merging grows the slot vector on demand, so zero is a
    /// fine starting size for accumulator cells).
    pub fn new(endpoints: usize) -> WindowCell {
        WindowCell {
            injected: 0,
            ejected: 0,
            latency: LogHistogram::new(),
            wait_count: 0,
            wait_sum: 0,
            wait_max: 0,
            buffer_integral: 0,
            ep_wait: vec![(0, 0); endpoints],
        }
    }

    /// Folds another plane's same-epoch cell into this one.
    pub fn merge(&mut self, other: &WindowCell) {
        self.injected += other.injected;
        self.ejected += other.ejected;
        self.latency.merge(&other.latency);
        self.wait_count += other.wait_count;
        self.wait_sum += other.wait_sum;
        self.wait_max = self.wait_max.max(other.wait_max);
        self.buffer_integral += other.buffer_integral;
        if self.ep_wait.len() < other.ep_wait.len() {
            self.ep_wait.resize(other.ep_wait.len(), (0, 0));
        }
        for (a, b) in self.ep_wait.iter_mut().zip(&other.ep_wait) {
            a.0 += b.0;
            a.1 += b.1;
        }
    }
}

/// The kind of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A packet entered a NIC injection queue.
    Inject,
    /// A packet won a downstream virtual channel (at injection or at an
    /// in-network VC allocator).
    VcAlloc,
    /// A flit crossed a router's crossbar toward an output port.
    Hop,
    /// A single-flit packet took the lookahead bypass path through a
    /// router (zero-cycle buffering).
    Bypass,
    /// A tail flit was consumed at its destination endpoint.
    Eject,
    /// The system layer committed a globally ordered request at an
    /// endpoint (recorded by `scorpio-core`, not the network).
    OrderedCommit,
}

impl TraceKind {
    /// The schema name of this event kind, as emitted in trace JSONL.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Inject => "inject",
            TraceKind::VcAlloc => "vc-alloc",
            TraceKind::Hop => "hop",
            TraceKind::Bypass => "bypass",
            TraceKind::Eject => "eject",
            TraceKind::OrderedCommit => "ordered-commit",
        }
    }
}

/// One flit event. Field meaning varies by [`TraceKind`]; see
/// [`TraceEvent::json_body`] for the rendered schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation cycle the event occurred on.
    pub cycle: u64,
    /// Network plane (0 for single-plane fabrics; the system layer's
    /// ordered-commit events carry the plane the request travelled on).
    pub plane: u16,
    /// Layer tiebreak for the merge sort: 0 = network, 1 = system.
    pub src: u8,
    /// Monotonic per-(plane, layer) sequence number.
    pub seq: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Packet uid — or the SID for [`TraceKind::OrderedCommit`].
    pub uid: u64,
    /// Virtual network (unused for ordered-commit).
    pub vnet: u8,
    /// Endpoint index (inject/eject/ordered-commit) or router id
    /// (vc-alloc/hop/bypass).
    pub node: u32,
    /// Port index ([`Port::index`] order): the output port for
    /// vc-alloc/hop, the arrival port for bypass. Unused otherwise.
    pub port: u8,
    /// Virtual channel within `vnet` (vc-alloc/hop/eject).
    pub vc: u8,
    /// Extra: packet latency for eject, `own` flag (0/1) for
    /// ordered-commit.
    pub aux: u64,
}

impl TraceEvent {
    /// The deterministic global ordering key: (cycle, plane, layer, seq).
    pub fn sort_key(&self) -> (u64, u16, u8, u64) {
        (self.cycle, self.plane, self.src, self.seq)
    }

    /// Renders the event as one JSON object (no trailing newline).
    pub fn json_body(&self) -> String {
        let head = format!(
            r#"{{"cycle":{},"plane":{},"event":{:?}"#,
            self.cycle,
            self.plane,
            self.kind.name()
        );
        let rest = match self.kind {
            TraceKind::Inject => {
                format!(
                    r#","ep":{},"vnet":{},"uid":{}}}"#,
                    self.node, self.vnet, self.uid
                )
            }
            TraceKind::VcAlloc | TraceKind::Hop => format!(
                r#","router":{},"port":{},"vc":{},"vnet":{},"uid":{}}}"#,
                self.node, self.port, self.vc, self.vnet, self.uid
            ),
            TraceKind::Bypass => format!(
                r#","router":{},"port":{},"vnet":{},"uid":{}}}"#,
                self.node, self.port, self.vnet, self.uid
            ),
            TraceKind::Eject => format!(
                r#","ep":{},"vnet":{},"vc":{},"uid":{},"lat":{}}}"#,
                self.node, self.vnet, self.vc, self.uid, self.aux
            ),
            TraceKind::OrderedCommit => {
                format!(
                    r#","ep":{},"sid":{},"own":{}}}"#,
                    self.node, self.uid, self.aux
                )
            }
        };
        head + &rest
    }
}

/// Merges per-stream event buffers (each an exact prefix of its own
/// stream, already in key order) into the exact global prefix of at most
/// `limit` events.
pub fn merge_trace(streams: Vec<Vec<TraceEvent>>, limit: usize) -> Vec<TraceEvent> {
    let mut all: Vec<TraceEvent> = streams.into_iter().flatten().collect();
    all.sort_by_key(TraceEvent::sort_key);
    all.truncate(limit);
    all
}

/// The per-plane observability sink. Owned by [`crate::Network`]; absent
/// (a `None`) unless [`crate::Network::set_observability`] installs it.
#[derive(Debug, Clone)]
pub struct NetObs {
    plane: u16,
    /// Counters enabled?
    pub counters: bool,
    trace: bool,
    trace_limit: usize,
    /// Current cycle, refreshed by the network at the top of each tick.
    pub(crate) cycle: u64,
    seq: u64,
    events: Vec<TraceEvent>,
    dropped: u64,
    /// Flit crossings per (router, output port), flattened as
    /// `router * Port::COUNT + port`. Non-local ports measure link
    /// utilization; local ports measure ejection traffic.
    pub link_flits: Vec<u64>,
    /// Sum over ticked routers and cycles of resident input-VC packets
    /// (a buffer-occupancy integral in packet-cycles; idle-skipped routers
    /// contribute zero by construction).
    pub buffer_integral: u64,
    /// Buffered flits that lost switch allocation stage I (another VC on
    /// the same input port won the port this cycle).
    pub stall_sa_i: u64,
    /// SA-I winners that lost switch allocation stage II (another input
    /// port — or a lookahead bypass — won the output).
    pub stall_sa_o: u64,
    /// Cycles a head flit sat blocked in VC allocation (no eligible free
    /// downstream VC, or an in-flight SID conflict), counted per VC.
    pub stall_vc_alloc: u64,
    /// Cycles a body flit sat blocked on downstream credits, per VC.
    pub stall_credit: u64,
    /// Flits buffered per VC, flattened per vnet at `vc_offset`.
    pub vc_buffered: Vec<u64>,
    /// Start of each vnet's VC range within [`NetObs::vc_buffered`].
    pub vc_offset: Vec<u32>,
    /// Injection wait (queue entry to head-flit VC grant) per endpoint,
    /// indexed like the network's injection ports.
    pub inject_wait: Vec<LogHistogram>,
    /// End-to-end packet latency (inject to tail ejection), all classes.
    pub packet_latency: LogHistogram,
    /// Packet latency split per virtual network.
    pub vnet_latency: Vec<LogHistogram>,
    /// Window length in cycles; 0 disables the windowed telemetry.
    window_cycles: u64,
    /// Epoch-indexed telemetry cells (epoch = cycle / window length),
    /// grown on first touch so untouched tail epochs simply don't exist.
    windows: Vec<WindowCell>,
    /// Injection-port count, for sizing new cells.
    endpoints: usize,
}

impl NetObs {
    /// Builds a sink for a plane with `routers` routers and `endpoints`
    /// injection ports, shaped by `cfg`'s virtual networks.
    pub fn new(
        plane: u16,
        obs: ObsConfig,
        cfg: &NocConfig,
        routers: usize,
        endpoints: usize,
    ) -> Self {
        let mut vc_offset = Vec::with_capacity(cfg.vnets.len());
        let mut total_vcs = 0u32;
        for v in &cfg.vnets {
            vc_offset.push(total_vcs);
            total_vcs += v.total_vcs() as u32;
        }
        NetObs {
            plane,
            counters: obs.counters,
            trace: obs.trace,
            trace_limit: obs.trace_limit,
            cycle: 0,
            seq: 0,
            events: Vec::new(),
            dropped: 0,
            link_flits: vec![0; routers * Port::COUNT],
            buffer_integral: 0,
            stall_sa_i: 0,
            stall_sa_o: 0,
            stall_vc_alloc: 0,
            stall_credit: 0,
            vc_buffered: vec![0; total_vcs as usize],
            vc_offset,
            inject_wait: vec![LogHistogram::new(); endpoints],
            packet_latency: LogHistogram::new(),
            vnet_latency: vec![LogHistogram::new(); cfg.vnets.len()],
            window_cycles: obs.window_cycles,
            windows: Vec::new(),
            endpoints,
        }
    }

    /// The plane this sink belongs to.
    pub fn plane(&self) -> u16 {
        self.plane
    }

    /// Whether the trace stream is enabled.
    pub fn tracing(&self) -> bool {
        self.trace
    }

    /// Retained trace events, in key order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drains the retained trace events.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events discarded after the per-plane cap filled.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Flat index of (vnet, vc) into [`NetObs::vc_buffered`].
    pub fn vc_flat(&self, vnet: u8, vc: u8) -> usize {
        self.vc_offset[vnet as usize] as usize + vc as usize
    }

    /// The configured window length in cycles (0 = windowing off).
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// The epoch-indexed window cells recorded so far.
    pub fn windows(&self) -> &[WindowCell] {
        &self.windows
    }

    /// The cell for the epoch containing `cycle`, grown on demand.
    #[inline]
    fn window_at(&mut self, cycle: u64) -> &mut WindowCell {
        let idx = (cycle / self.window_cycles) as usize;
        if self.windows.len() <= idx {
            let endpoints = self.endpoints;
            self.windows
                .resize_with(idx + 1, || WindowCell::new(endpoints));
        }
        &mut self.windows[idx]
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn event(
        &mut self,
        kind: TraceKind,
        uid: u64,
        vnet: u8,
        node: u32,
        port: u8,
        vc: u8,
        aux: u64,
    ) {
        if !self.trace {
            return;
        }
        if self.events.len() < self.trace_limit {
            self.events.push(TraceEvent {
                cycle: self.cycle,
                plane: self.plane,
                src: 0,
                seq: self.seq,
                kind,
                uid,
                vnet,
                node,
                port,
                vc,
                aux,
            });
        } else {
            self.dropped += 1;
        }
        self.seq += 1;
    }

    /// Hook: a packet entered injection queue `ep` (cycle passed in
    /// because injection happens between network ticks).
    pub(crate) fn on_inject(&mut self, cycle: u64, ep: u32, vnet: u8, uid: u64) {
        self.cycle = cycle;
        if self.window_cycles != 0 {
            self.window_at(cycle).injected += 1;
        }
        self.event(TraceKind::Inject, uid, vnet, ep, 0, 0, 0);
    }

    /// Hook: a head flit left injection queue `ep` into downstream VC
    /// `(vnet, vc)` of router `router`'s local input `port` after
    /// `wait` cycles in the queue.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_injected(
        &mut self,
        cycle: u64,
        ep: u32,
        router: u32,
        port: u8,
        vnet: u8,
        vc: u8,
        uid: u64,
        wait: u64,
    ) {
        self.cycle = cycle;
        if self.counters {
            self.inject_wait[ep as usize].record(wait);
        }
        if self.window_cycles != 0 {
            let cell = self.window_at(cycle);
            cell.wait_count += 1;
            cell.wait_sum += wait;
            cell.wait_max = cell.wait_max.max(wait);
            cell.ep_wait[ep as usize].0 += 1;
            cell.ep_wait[ep as usize].1 += wait;
        }
        self.event(TraceKind::VcAlloc, uid, vnet, router, port, vc, 0);
    }

    /// Hook: a tail flit was consumed at endpoint `ep`; `lat` is the
    /// end-to-end packet latency.
    pub(crate) fn on_eject(&mut self, cycle: u64, ep: u32, vnet: u8, vc: u8, uid: u64, lat: u64) {
        self.cycle = cycle;
        if self.counters {
            self.packet_latency.record(lat);
            self.vnet_latency[vnet as usize].record(lat);
        }
        if self.window_cycles != 0 {
            let cell = self.window_at(cycle);
            cell.ejected += 1;
            cell.latency.record(lat);
        }
        self.event(TraceKind::Eject, uid, vnet, ep, 0, vc, lat);
    }

    /// Hook: a flit crossed router `router`'s crossbar to `port`.
    pub(crate) fn on_crossing(&mut self, router: u32, port: u8, vnet: u8, vc: u8, uid: u64) {
        if self.counters {
            self.link_flits[router as usize * Port::COUNT + port as usize] += 1;
        }
        self.event(TraceKind::Hop, uid, vnet, router, port, vc, 0);
    }

    /// Hook: a flit took the bypass path at `router`, arriving on `port`.
    pub(crate) fn on_bypass(&mut self, router: u32, port: u8, vnet: u8, uid: u64) {
        self.event(TraceKind::Bypass, uid, vnet, router, port, 0, 0);
    }

    /// Hook: a head flit won downstream VC `(vnet, vc)` toward `port` at
    /// `router` (in-network VC allocation, including bypass grants).
    pub(crate) fn on_vc_alloc(&mut self, router: u32, port: u8, vnet: u8, vc: u8, uid: u64) {
        self.event(TraceKind::VcAlloc, uid, vnet, router, port, vc, 0);
    }

    /// Hook: a flit was written into an input VC buffer.
    #[inline]
    pub(crate) fn on_buffered(&mut self, vnet: u8, vc: u8) {
        if self.counters {
            let idx = self.vc_flat(vnet, vc);
            self.vc_buffered[idx] += 1;
        }
    }

    /// Hook: a ticked router holds `occupancy` resident input-VC packets
    /// this cycle (the buffer-occupancy integral's integrand).
    #[inline]
    pub(crate) fn on_occupancy(&mut self, occupancy: u64) {
        if self.counters {
            self.buffer_integral += occupancy;
        }
        if self.window_cycles != 0 && occupancy != 0 {
            let cycle = self.cycle;
            self.window_at(cycle).buffer_integral += occupancy;
        }
    }

    /// Merges another plane's counters into this one (histograms,
    /// stalls, occupancy; link counters are merged element-wise).
    pub fn merge_counters(&mut self, other: &NetObs) {
        self.buffer_integral += other.buffer_integral;
        self.stall_sa_i += other.stall_sa_i;
        self.stall_sa_o += other.stall_sa_o;
        self.stall_vc_alloc += other.stall_vc_alloc;
        self.stall_credit += other.stall_credit;
        for (a, b) in self.link_flits.iter_mut().zip(&other.link_flits) {
            *a += b;
        }
        for (a, b) in self.vc_buffered.iter_mut().zip(&other.vc_buffered) {
            *a += b;
        }
        for (a, b) in self.inject_wait.iter_mut().zip(&other.inject_wait) {
            a.merge(b);
        }
        self.packet_latency.merge(&other.packet_latency);
        for (a, b) in self.vnet_latency.iter_mut().zip(&other.vnet_latency) {
            a.merge(b);
        }
        if self.windows.len() < other.windows.len() {
            let endpoints = self.endpoints;
            self.windows
                .resize_with(other.windows.len(), || WindowCell::new(endpoints));
        }
        for (a, b) in self.windows.iter_mut().zip(&other.windows) {
            a.merge(b);
        }
        self.dropped += other.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> NetObs {
        NetObs::new(0, ObsConfig::with_trace(4), &NocConfig::scorpio(), 4, 5)
    }

    #[test]
    fn trace_cap_counts_drops() {
        let mut o = sink();
        for i in 0..6 {
            o.on_inject(i, 0, 0, i);
        }
        assert_eq!(o.events().len(), 4);
        assert_eq!(o.dropped(), 2);
        // Sequence numbers keep advancing past the cap so merge keys of
        // later retained events (there are none) would stay ordered.
        assert_eq!(o.events()[3].seq, 3);
    }

    #[test]
    fn vc_flat_layout_spans_vnets() {
        let o = sink();
        // GO-REQ: 4 VCs + rVC = 5, then UO-RESP: 2 VCs.
        assert_eq!(o.vc_flat(0, 0), 0);
        assert_eq!(o.vc_flat(0, 4), 4);
        assert_eq!(o.vc_flat(1, 0), 5);
        assert_eq!(o.vc_buffered.len(), 7);
    }

    #[test]
    fn json_bodies_match_schema() {
        let mut o = sink();
        o.on_inject(3, 7, 1, 42);
        o.on_eject(9, 8, 0, 2, 42, 6);
        let e0 = o.events()[0].json_body();
        assert_eq!(
            e0,
            r#"{"cycle":3,"plane":0,"event":"inject","ep":7,"vnet":1,"uid":42}"#
        );
        let e1 = o.events()[1].json_body();
        assert_eq!(
            e1,
            r#"{"cycle":9,"plane":0,"event":"eject","ep":8,"vnet":0,"vc":2,"uid":42,"lat":6}"#
        );
        let commit = TraceEvent {
            cycle: 11,
            plane: 1,
            src: 1,
            seq: 0,
            kind: TraceKind::OrderedCommit,
            uid: 5,
            vnet: 0,
            node: 2,
            port: 0,
            vc: 0,
            aux: 1,
        };
        assert_eq!(
            commit.json_body(),
            r#"{"cycle":11,"plane":1,"event":"ordered-commit","ep":2,"sid":5,"own":1}"#
        );
    }

    #[test]
    fn merge_trace_is_exact_prefix() {
        // Plane 0 capped at 3 events (cycles 1..=3, later ones dropped);
        // plane 1 under its cap with events at cycles 2 and 50. The merged
        // prefix of 3 must be exactly the 3 globally-earliest events.
        let mk = |cycle, plane, seq| TraceEvent {
            cycle,
            plane,
            src: 0,
            seq,
            kind: TraceKind::Inject,
            uid: 0,
            vnet: 0,
            node: 0,
            port: 0,
            vc: 0,
            aux: 0,
        };
        let p0 = vec![mk(1, 0, 0), mk(2, 0, 1), mk(3, 0, 2)];
        let p1 = vec![mk(2, 1, 0), mk(50, 1, 1)];
        let merged = merge_trace(vec![p0, p1], 3);
        let keys: Vec<_> = merged.iter().map(|e| (e.cycle, e.plane)).collect();
        assert_eq!(keys, vec![(1, 0), (2, 0), (2, 1)]);
    }

    #[test]
    fn counters_accumulate_and_merge() {
        let mut a = sink();
        let mut b = sink();
        a.on_crossing(1, 2, 0, 0, 9);
        b.on_crossing(1, 2, 0, 0, 10);
        a.on_buffered(1, 1);
        b.on_eject(4, 0, 1, 0, 10, 12);
        a.merge_counters(&b);
        assert_eq!(a.link_flits[Port::COUNT + 2], 2);
        assert_eq!(a.vc_buffered[a.vc_flat(1, 1)], 1);
        assert_eq!(a.packet_latency.count(), 1);
        assert_eq!(a.vnet_latency[1].count(), 1);
    }
}
