//! The assembled main network: routers, links, injection and ejection ports.
//!
//! [`Network`] owns every router of the mesh plus, for each endpoint (tile
//! or memory-controller port), an injection port and an ejection port.
//! Cross-component communication travels on *wires* with fixed delays:
//! flits take two cycles from ST to availability at the next hop (crossbar
//! edge + one link stage), lookaheads and credits take one. A cycle is
//! `tick()` (compute) followed by `commit()` (clock edge).
//!
//! The consumer (a NIC model, or a test harness) interacts through:
//!
//! * [`Network::try_inject`] — queue a packet at an endpoint,
//! * [`Network::eject_heads`] / [`Network::eject_take`] — inspect and
//!   consume arrived flits VC by VC (the NIC's ESID logic decides *which*
//!   GO-REQ flit to take),
//! * [`Network::set_esid`] — publish the endpoint's expected SID so routers
//!   can police their reserved VCs.

use crate::config::NocConfig;
use crate::flit::{Flit, Packet, Payload, Sid, VnetId};
use crate::obs::{NetObs, ObsConfig};
use crate::pool::TickPool;
use crate::router::{
    CreditArrival, DownstreamState, EsidOracle, FlitArrival, LaArrival, Router, RouterOut,
    RouterStats,
};
use crate::tables::{validate_datelines, RouteCtx, RoutingTables, VcClass};
use crate::topology::{Endpoint, LocalSlot, Port, RouterId, Topology};
use scorpio_sim::stats::{Accumulator, Counter};
use scorpio_sim::{ActiveSet, Cycle, Fifo, PushError};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Identifies one ejection-buffer VC at an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EjectSlot {
    /// Virtual network.
    pub vnet: VnetId,
    /// VC index within the vnet (the rVC is the last index when ordered).
    pub vc: u8,
}

/// A wire with a fixed delay in cycles: events staged during cycle `c`
/// become visible at cycle `c + delay`.
///
/// Buffers are recycled: the slot drained by [`Wire::deliver`] becomes the
/// staging buffer for the next [`Wire::commit`], so a wire allocates
/// nothing in steady state no matter how much traffic it carries.
#[derive(Debug)]
struct Wire<E> {
    slots: VecDeque<Vec<E>>,
    staged: Vec<E>,
    spare: Vec<E>,
}

impl<E> Wire<E> {
    fn new(delay: usize) -> Self {
        assert!(delay >= 1, "wire delay must be at least one cycle");
        // Invariant: `slots.len() == delay` at the start of every tick;
        // each tick pops one slot and each commit pushes one, so an event
        // staged during cycle `c` is delivered at cycle `c + delay`.
        Wire {
            slots: (0..delay).map(|_| Vec::new()).collect(),
            staged: Vec::new(),
            spare: Vec::new(),
        }
    }

    fn push(&mut self, e: E) {
        self.staged.push(e);
    }

    /// Hands every due event to `f`, delivering straight into the
    /// receiver's preallocated inbox without an intermediate `Vec`.
    fn deliver(&mut self, mut f: impl FnMut(E)) {
        let mut due = self.slots.pop_front().unwrap_or_default();
        for e in due.drain(..) {
            f(e);
        }
        self.spare = due;
    }

    fn commit(&mut self) {
        let staged = std::mem::replace(&mut self.staged, std::mem::take(&mut self.spare));
        self.slots.push_back(staged);
    }
}

/// In-flight state of a multi-flit packet being injected.
#[derive(Debug, Clone, Copy)]
struct SendState<T> {
    packet: Packet<T>,
    next_idx: u8,
    vc: u8,
}

/// The NIC-side injection port: per-vnet packet queues plus the credit/VC
/// view of the router's local input port.
#[derive(Debug)]
struct InjectPort<T> {
    router: RouterId,
    local_in: Port,
    queues: Vec<Fifo<Packet<T>>>,
    sending: Vec<Option<SendState<T>>>,
    ds: DownstreamState,
    next_vnet: usize,
}

/// The NIC-side ejection buffers: mirrors the VC structure the router's
/// local output port sees downstream.
#[derive(Debug)]
struct EjectPort<T> {
    router: RouterId,
    slot: LocalSlot,
    /// `[vnet][vc]` flit queues.
    bufs: Vec<Vec<VecDeque<Flit<T>>>>,
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Packets accepted by [`Network::try_inject`].
    pub injected_packets: Counter,
    /// Packet copies fully consumed at an endpoint (tail flit taken).
    pub delivered_packets: Counter,
    /// Latency from injection to tail consumption, per delivered copy.
    pub packet_latency: Accumulator,
    /// Same, split by virtual network.
    pub vnet_latency: Vec<Accumulator>,
    /// Flits that took the single-cycle bypass path, summed over routers.
    pub bypassed_flits: u64,
    /// Flits that were buffered (three-stage path), summed over routers.
    pub buffered_flits: u64,
}

impl NocStats {
    /// Folds another network's statistics into this one (the multi-plane
    /// aggregate view).
    pub fn merge(&mut self, other: &NocStats) {
        self.injected_packets.add(other.injected_packets.get());
        self.delivered_packets.add(other.delivered_packets.get());
        self.packet_latency.merge(&other.packet_latency);
        for (a, b) in self.vnet_latency.iter_mut().zip(&other.vnet_latency) {
            a.merge(b);
        }
        self.bypassed_flits += other.bypassed_flits;
        self.buffered_flits += other.buffered_flits;
    }
}

/// The SCORPIO main network.
///
/// # Examples
///
/// ```
/// use scorpio_noc::{Mesh, Network, NocConfig, Packet, RouterId, Endpoint, Sid};
///
/// let mesh = Mesh::square_with_corner_mcs(4);
/// let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
/// let src = Endpoint::tile(RouterId(0));
/// net.try_inject(src, Packet::request(src, Sid(0), 0, 7)).unwrap();
/// for _ in 0..100 {
///     net.tick();
///     net.commit();
/// }
/// // The broadcast reached the opposite corner.
/// let far = Endpoint::tile(RouterId(15));
/// assert!(net.eject_heads(far).next().is_some());
/// ```
pub struct Network<T> {
    topology: Topology,
    /// Routing tables compiled from the topology's spec at construction.
    tables: RoutingTables,
    /// Route via the tables (default) or evaluate the spec per flit (the
    /// coordinate-routing reference engine; see `route-lookup`).
    route_tables: bool,
    cfg: NocConfig,
    cycle: Cycle,
    routers: Vec<Router<T>>,
    inject: Vec<InjectPort<T>>,
    eject: Vec<EjectPort<T>>,
    /// Committed ESID per endpoint index; `staged_esid` applies at commit.
    esid: Vec<Option<(Sid, u16)>>,
    staged_esid: Vec<(usize, Option<(Sid, u16)>)>,
    /// Committed per-tile-endpoint ESID (tile number = `router·c + slot`),
    /// maintained incrementally at commit (the routers' [`EsidView`] reads
    /// these instead of rebuilding two fresh `Vec`s every tick).
    esid_tile: Vec<Option<(Sid, u16)>>,
    /// Committed per-router MC ESID (only meaningful on MC routers).
    esid_mc: Vec<Option<(Sid, u16)>>,
    // Wires.
    flit_wire: Wire<(RouterId, Port, u8, Flit<T>)>,
    la_wire: Wire<(RouterId, Port, Flit<T>)>,
    credit_wire: Wire<(RouterId, CreditArrival)>,
    eject_wire: Wire<(usize, u8, u8, Flit<T>)>,
    inject_credit_wire: Wire<(usize, u8, u8, bool)>,
    // Reused per-cycle scratch.
    inbox_flits: Vec<Vec<FlitArrival<T>>>,
    inbox_las: Vec<Vec<LaArrival<T>>>,
    inbox_credits: Vec<Vec<CreditArrival>>,
    outbox: Vec<RouterOut<T>>,
    // Active-set engine state: routers and injection ports with pending
    // work this cycle (wire arrivals, residual occupancy, queued packets).
    router_active: ActiveSet,
    inject_active: ActiveSet,
    router_scratch: Vec<u32>,
    inject_scratch: Vec<u32>,
    /// Per-lane event staging for the sharded router tick (empty between
    /// cycles; grown lazily to the pool's lane count on first use).
    shards: Vec<ShardBuf<T>>,
    /// Endpoints whose ejection buffers received flits this tick; drained
    /// by the system layer to wake sleeping tiles/MCs.
    ep_woken: ActiveSet,
    /// When set, probe every router and injection port each cycle instead
    /// of consulting the active sets (the pre-refactor engine, kept for
    /// equivalence testing and benchmarking).
    always_scan: bool,
    next_uid: u64,
    deliveries: HashMap<u64, u32>,
    last_progress: Cycle,
    stats: NocStats,
    /// Observability sink; `None` (the default) keeps every hook on the
    /// hot path down to a single branch.
    obs: Option<Box<NetObs>>,
}

/// Minimum drained work-list length for the sharded router tick; below
/// this the serial loop beats a pool dispatch (one mutex round-trip plus
/// cache handoff per cycle).
const SHARD_MIN_ROUTERS: usize = 48;

/// One lane's staging area for the sharded router tick: the events its
/// routers emitted this cycle, plus `(router, event-count)` spans so the
/// serial routing phase can replay them in exact serial visiting order.
struct ShardBuf<T> {
    events: Vec<RouterOut<T>>,
    spans: Vec<(u32, u32)>,
}

impl<T> Default for ShardBuf<T> {
    fn default() -> Self {
        ShardBuf {
            events: Vec::new(),
            spans: Vec::new(),
        }
    }
}

/// Raw views into the disjoint per-router state the shard workers touch.
/// Disjointness is by construction: the work list is sorted and deduped,
/// each worker owns a contiguous chunk of it plus the shard buffer of the
/// same index, and nothing else aliases these vectors during the batch.
struct ShardPtrs<T> {
    routers: *mut Router<T>,
    flits: *mut Vec<FlitArrival<T>>,
    las: *mut Vec<LaArrival<T>>,
    credits: *mut Vec<CreditArrival>,
    bufs: *mut ShardBuf<T>,
}

// SAFETY: sharing `ShardPtrs` across the pool only ever hands each worker
// exclusive access to disjoint elements (see the struct docs); `T: Send`
// makes moving that access to another thread sound.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for ShardPtrs<T> {}

/// Ticks the routers of one chunk of the sorted work list, staging emitted
/// events into shard buffer `ci` and clearing the chunk's inboxes. The
/// skip condition, tick call and inbox clears are exactly the serial
/// body's; only the event destination differs (staged, routed serially
/// afterwards, instead of routed inline).
///
/// # Safety
///
/// Concurrent invocations must receive disjoint `chunk` router indices and
/// distinct `ci` values, with `ptrs` valid for the whole batch.
#[allow(unsafe_code)]
unsafe fn tick_shard<T: Payload>(
    ptrs: &ShardPtrs<T>,
    chunk: &[u32],
    route: &RouteCtx<'_>,
    cfg: &NocConfig,
    view: &EsidView<'_>,
    ci: usize,
) {
    // SAFETY: `ci` and the router indices in `chunk` are exclusive to this
    // invocation per the function contract.
    let buf = unsafe { &mut *ptrs.bufs.add(ci) };
    for &r in chunk {
        let ridx = r as usize;
        // SAFETY: as above — no other worker touches router `ridx`.
        let (router, flits, las, credits) = unsafe {
            (
                &mut *ptrs.routers.add(ridx),
                &mut *ptrs.flits.add(ridx),
                &mut *ptrs.las.add(ridx),
                &mut *ptrs.credits.add(ridx),
            )
        };
        if router.is_idle() && flits.is_empty() && las.is_empty() && credits.is_empty() {
            continue;
        }
        let start = buf.events.len();
        router.tick(route, cfg, view, flits, las, credits, &mut buf.events, None);
        buf.spans.push((r, (buf.events.len() - start) as u32));
        flits.clear();
        las.clear();
        credits.clear();
    }
}

/// ESID view used by routers for reserved-VC eligibility. Expectations are
/// exact request instances: (SID, per-source sequence number). Link and MC
/// queries go through the compiled tables, not coordinate math.
struct EsidView<'a> {
    tables: &'a RoutingTables,
    /// Per-tile-endpoint ESID (indexed by tile number `router·c + slot`).
    tile: &'a [Option<(Sid, u16)>],
    /// Per-router MC ESID (only meaningful on MC routers).
    mc: &'a [Option<(Sid, u16)>],
}

impl EsidView<'_> {
    /// Whether any NIC local to router `r` — one of its tile slots or its
    /// MC port — expects exactly (`sid`, `seq`).
    fn router_has_expected(&self, r: RouterId, sid: Sid, seq: u16) -> bool {
        let c = self.tables.concentration() as usize;
        let base = r.index() * c;
        self.tile[base..base + c].contains(&Some((sid, seq)))
            || (self.tables.has_mc(r) && self.mc[r.index()] == Some((sid, seq)))
    }
}

impl EsidOracle for EsidView<'_> {
    fn rvc_eligible(&self, router: RouterId, out_port: Port, sid: Sid, seq: u16) -> bool {
        match out_port.tile_index() {
            Some(k) => {
                let c = self.tables.concentration() as usize;
                self.tile[router.index() * c + k as usize] == Some((sid, seq))
            }
            None => match out_port {
                Port::Mc => self.mc[router.index()] == Some((sid, seq)),
                mesh_port => match self.tables.neighbor(router, mesh_port) {
                    Some(n) => self.router_has_expected(n, sid, seq),
                    None => false,
                },
            },
        }
    }
}

impl<T: Payload> Network<T> {
    /// Builds a network over any delivery fabric — a [`Mesh`], [`Torus`],
    /// [`Ring`] or an existing [`Topology`] — with configuration `cfg`.
    /// The topology's routing spec is compiled into per-router lookup
    /// tables here; the per-flit hot path never runs coordinate math.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`NocConfig::validate`], or if the topology
    /// has wraparound links and a vnet has fewer than two regular VCs
    /// (dateline deadlock freedom needs a class split).
    ///
    /// [`Mesh`]: crate::Mesh
    /// [`Torus`]: crate::Torus
    /// [`Ring`]: crate::Ring
    pub fn new(fabric: impl Into<Topology>, cfg: NocConfig) -> Self {
        let topology: Topology = fabric.into();
        cfg.validate().expect("invalid NoC configuration");
        validate_datelines(&topology, &cfg);
        let tables = RoutingTables::build(&topology);
        let routers: Vec<Router<T>> = topology
            .routers()
            .map(|r| Router::new(&tables, &cfg, r))
            .collect();
        let endpoints: Vec<Endpoint> = topology.endpoints().collect();
        let inject = endpoints
            .iter()
            .map(|ep| InjectPort {
                router: ep.router,
                local_in: ep.slot.port(),
                queues: cfg
                    .vnets
                    .iter()
                    .map(|_| Fifo::bounded(cfg.inject_queue_depth))
                    .collect(),
                sending: cfg.vnets.iter().map(|_| None).collect(),
                ds: DownstreamState::new(&cfg),
                next_vnet: 0,
            })
            .collect();
        let eject = endpoints
            .iter()
            .map(|ep| EjectPort {
                router: ep.router,
                slot: ep.slot,
                bufs: cfg
                    .vnets
                    .iter()
                    .map(|v| (0..v.total_vcs()).map(|_| VecDeque::new()).collect())
                    .collect(),
            })
            .collect();
        let n_routers = topology.router_count();
        let n_tiles = topology.tile_count();
        let n_eps = endpoints.len();
        let vnets = cfg.vnets.len();
        Network {
            topology,
            tables,
            route_tables: true,
            cfg,
            cycle: Cycle::ZERO,
            routers,
            inject,
            eject,
            esid: vec![None; n_eps],
            staged_esid: Vec::new(),
            esid_tile: vec![None; n_tiles],
            esid_mc: vec![None; n_routers],
            flit_wire: Wire::new(2),
            la_wire: Wire::new(1),
            credit_wire: Wire::new(1),
            eject_wire: Wire::new(2),
            inject_credit_wire: Wire::new(1),
            inbox_flits: (0..n_routers).map(|_| Vec::new()).collect(),
            inbox_las: (0..n_routers).map(|_| Vec::new()).collect(),
            inbox_credits: (0..n_routers).map(|_| Vec::new()).collect(),
            outbox: Vec::new(),
            router_active: ActiveSet::new(n_routers),
            inject_active: ActiveSet::new(n_eps),
            router_scratch: Vec::new(),
            inject_scratch: Vec::new(),
            shards: Vec::new(),
            ep_woken: ActiveSet::new(n_eps),
            always_scan: false,
            next_uid: 1,
            deliveries: HashMap::new(),
            last_progress: Cycle::ZERO,
            stats: NocStats {
                vnet_latency: vec![Accumulator::new(); vnets],
                ..NocStats::default()
            },
            obs: None,
        }
    }

    /// The topology this network delivers over.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The delivery fabric — legacy name from when only meshes existed;
    /// identical to [`Network::topology`].
    pub fn mesh(&self) -> &Topology {
        &self.topology
    }

    /// The active configuration.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Aggregate statistics (router counters folded in on each call).
    pub fn stats(&self) -> NocStats {
        let mut s = self.stats.clone();
        for r in &self.routers {
            s.bypassed_flits += r.stats.bypassed_flits.get();
            s.buffered_flits += r.stats.buffered_flits.get();
        }
        s
    }

    /// Per-router statistics, indexed by router id.
    pub fn router_stats(&self, r: RouterId) -> &RouterStats {
        &self.routers[r.index()].stats
    }

    /// The last cycle on which any packet moved or was consumed — a
    /// watchdog hook for deadlock detection in tests.
    pub fn last_progress(&self) -> Cycle {
        self.last_progress
    }

    /// Dumps occupied router state for deadlock debugging.
    #[doc(hidden)]
    pub fn debug_dump(&self) -> String {
        let mut out = String::new();
        for r in &self.routers {
            let lines = r.debug_occupancy();
            if !lines.is_empty() {
                out.push_str(&format!("router {}\n", r.id()));
                for l in lines {
                    out.push_str(&l);
                    out.push('\n');
                }
            }
        }
        out
    }

    /// The dense index of `ep` (tiles first, then MC ports).
    ///
    /// # Panics
    ///
    /// Panics if `ep` does not exist in this topology.
    pub fn endpoint_index(&self, ep: Endpoint) -> usize {
        self.tables.endpoint_index(ep)
    }

    /// Queues `packet` for injection at `ep`, stamping uid and inject cycle.
    ///
    /// # Errors
    ///
    /// Returns the packet if the per-vnet injection queue is full.
    pub fn try_inject(
        &mut self,
        ep: Endpoint,
        mut packet: Packet<T>,
    ) -> Result<u64, PushError<Packet<T>>> {
        let idx = self.endpoint_index(ep);
        packet.inject_cycle = self.cycle;
        packet.uid = self.next_uid;
        let vnet = packet.vnet.index();
        assert!(vnet < self.cfg.vnets.len(), "packet on unknown vnet");
        self.inject[idx].queues[vnet].push(packet)?;
        self.inject_active.wake(idx);
        self.next_uid += 1;
        self.stats.injected_packets.incr();
        if let Some(o) = self.obs.as_deref_mut() {
            o.on_inject(self.cycle.as_u64(), idx as u32, packet.vnet.0, packet.uid);
        }
        Ok(packet.uid)
    }

    /// Number of packets waiting (or mid-send) at `ep`'s injection port.
    pub fn inject_backlog(&self, ep: Endpoint) -> usize {
        let p = &self.inject[self.endpoint_index(ep)];
        p.queues.iter().map(Fifo::len).sum::<usize>() + p.sending.iter().flatten().count()
    }

    /// Whether packet `uid` is still waiting in `ep`'s injection port (not
    /// yet handed to the router). The NIC uses this to hold back loopback
    /// self-delivery of its own ordered requests until the broadcast copy
    /// has actually entered the network — the invariant the reserved-VC
    /// deadlock-freedom argument rests on.
    pub fn inject_pending(&self, ep: Endpoint, uid: u64) -> bool {
        let p = &self.inject[self.endpoint_index(ep)];
        p.queues.iter().any(|q| q.iter().any(|pkt| pkt.uid == uid))
            || p.sending.iter().flatten().any(|s| s.packet.uid == uid)
    }

    /// Publishes the expected request instance — (SID, per-source sequence
    /// number) — of `ep`'s NIC (takes effect next cycle).
    pub fn set_esid(&mut self, ep: Endpoint, esid: Option<(Sid, u16)>) {
        let idx = self.endpoint_index(ep);
        self.staged_esid.push((idx, esid));
    }

    /// The committed expectation of `ep` as routers currently see it.
    pub fn esid(&self, ep: Endpoint) -> Option<(Sid, u16)> {
        self.esid[self.endpoint_index(ep)]
    }

    /// Whether any flit is waiting in the ejection buffers of the endpoint
    /// with dense index `ep_idx`. The system layer's sleep check: an
    /// endpoint with buffered flits must keep its NIC ticking.
    pub fn eject_occupied(&self, ep_idx: usize) -> bool {
        self.eject[ep_idx]
            .bufs
            .iter()
            .any(|vcs| vcs.iter().any(|q| !q.is_empty()))
    }

    /// Head flits waiting in `ep`'s ejection buffers, one per occupied VC.
    pub fn eject_heads(&self, ep: Endpoint) -> impl Iterator<Item = (EjectSlot, &Flit<T>)> {
        let port = &self.eject[self.endpoint_index(ep)];
        port.bufs.iter().enumerate().flat_map(|(n, vcs)| {
            vcs.iter().enumerate().filter_map(move |(vc, q)| {
                q.front().map(|f| {
                    (
                        EjectSlot {
                            vnet: VnetId(n as u8),
                            vc: vc as u8,
                        },
                        f,
                    )
                })
            })
        })
    }

    /// Consumes the head flit of `slot` at `ep`, returning a credit to the
    /// router. Returns `None` if the VC is empty.
    pub fn eject_take(&mut self, ep: Endpoint, slot: EjectSlot) -> Option<Flit<T>> {
        let idx = self.endpoint_index(ep);
        let port = &mut self.eject[idx];
        let flit = port.bufs[slot.vnet.index()][slot.vc as usize].pop_front()?;
        self.credit_wire.push((
            port.router,
            CreditArrival {
                out_port: port.slot.port(),
                vnet: slot.vnet.0,
                vc: slot.vc,
                dealloc: flit.is_tail(),
            },
        ));
        self.last_progress = self.cycle;
        if flit.is_tail() {
            self.stats.delivered_packets.incr();
            let lat = self.cycle - flit.packet.inject_cycle;
            self.stats.packet_latency.record(lat);
            self.stats.vnet_latency[flit.packet.vnet.index()].record(lat);
            if let Some(o) = self.obs.as_deref_mut() {
                o.on_eject(
                    self.cycle.as_u64(),
                    idx as u32,
                    flit.packet.vnet.0,
                    slot.vc,
                    flit.packet.uid,
                    lat,
                );
            }
            if self.cfg.track_deliveries {
                *self.deliveries.entry(flit.packet.uid).or_insert(0) += 1;
            }
        }
        Some(flit)
    }

    /// How many copies of packet `uid` have been fully consumed so far
    /// (requires `track_deliveries`).
    pub fn deliveries(&self, uid: u64) -> u32 {
        self.deliveries.get(&uid).copied().unwrap_or(0)
    }

    /// Drains the per-uid delivery counts accumulated under
    /// `track_deliveries`. The map grows with every delivered packet and is
    /// never pruned otherwise, so long-running tests that assert on
    /// [`Network::deliveries`] should call this between traffic phases.
    pub fn clear_deliveries(&mut self) {
        self.deliveries.clear();
    }

    /// Selects the always-scan engine: probe every router and injection
    /// port each cycle instead of only the woken ones. Produces cycle-exact
    /// identical behavior to the default active-set engine (asserted by the
    /// equivalence suite); exists so that claim stays testable and the
    /// speedup measurable. Call before the first cycle.
    pub fn set_always_scan(&mut self, scan: bool) {
        self.always_scan = scan;
    }

    /// Selects how routers route: via the compiled tables (default) or by
    /// evaluating the topology's coordinate spec per flit — the reference
    /// engine the tables were compiled from. Produces identical behavior
    /// (asserted by the equivalence suite); exists so the table-lookup
    /// speedup stays measurable (`route-lookup` scenario). Call before the
    /// first cycle.
    pub fn set_table_routing(&mut self, tables: bool) {
        self.route_tables = tables;
    }

    /// Installs (or, with `None`, removes) the observability sink for this
    /// network, tagged as plane `plane` in trace events. Call before the
    /// first cycle; every hook is engine-invariant, so enabling the sink
    /// never changes simulated behavior.
    pub fn set_observability(&mut self, plane: u16, cfg: Option<ObsConfig>) {
        self.obs = cfg.map(|c| {
            Box::new(NetObs::new(
                plane,
                c,
                &self.cfg,
                self.topology.router_count(),
                self.inject.len(),
            ))
        });
    }

    /// The observability sink, if installed.
    pub fn obs(&self) -> Option<&NetObs> {
        self.obs.as_deref()
    }

    /// Mutable access to the observability sink (trace draining).
    pub fn obs_mut(&mut self) -> Option<&mut NetObs> {
        self.obs.as_deref_mut()
    }

    /// Drains the set of endpoints whose ejection buffers received flits
    /// since the last call (ascending order, deduplicated). The system
    /// layer uses this to wake sleeping tiles and memory controllers.
    pub fn take_woken_endpoints(&mut self, out: &mut Vec<u32>) {
        self.ep_woken.drain_sorted(out);
    }

    /// ORs into `bits` (a region bitset) the notification regions this
    /// plane's most recent tick touched: the region of every router on the
    /// drained router work list and of every injection port on the drained
    /// port list. `region_of_router` maps router index → region,
    /// `region_of_ep` maps endpoint index → region. The drained lists are
    /// a deterministic over-approximation of activity (a woken router may
    /// still skip as idle), which is exactly what the per-region leap
    /// accounting needs: a region is only credited with a leaped cycle
    /// when provably nothing in it was even woken. Valid only for a plane
    /// that ticked this cycle — the scratch lists persist until the next
    /// tick precisely so this read-back can run post-commit.
    pub fn or_ticked_regions(
        &self,
        region_of_router: &[u32],
        region_of_ep: &[u32],
        bits: &mut [u64],
    ) {
        for &r in &self.router_scratch {
            let g = region_of_router[r as usize];
            bits[g as usize / 64] |= 1 << (g % 64);
        }
        for &e in &self.inject_scratch {
            let g = region_of_ep[e as usize];
            bits[g as usize / 64] |= 1 << (g % 64);
        }
    }

    /// Compute phase of one cycle.
    pub fn tick(&mut self) {
        if let Some(o) = self.obs.as_deref_mut() {
            o.cycle = self.cycle.as_u64();
        }
        self.deliver_wires();
        self.tick_routers();
        self.tick_inject_ports();
    }

    /// Delivers due wire traffic into the preallocated inboxes, waking the
    /// receiving routers and recording which endpoints saw ejections.
    fn deliver_wires(&mut self) {
        let Network {
            flit_wire,
            la_wire,
            credit_wire,
            eject_wire,
            inject_credit_wire,
            inbox_flits,
            inbox_las,
            inbox_credits,
            eject,
            inject,
            router_active,
            ep_woken,
            cfg,
            last_progress,
            cycle,
            ..
        } = self;
        flit_wire.deliver(|(r, port, vc, flit)| {
            inbox_flits[r.index()].push(FlitArrival { port, vc, flit });
            router_active.wake(r.index());
            *last_progress = *cycle;
        });
        la_wire.deliver(|(r, port, flit)| {
            inbox_las[r.index()].push(LaArrival { port, flit });
            router_active.wake(r.index());
        });
        credit_wire.deliver(|(r, credit)| {
            inbox_credits[r.index()].push(credit);
            router_active.wake(r.index());
        });
        eject_wire.deliver(|(ep_idx, vnet, vc, flit)| {
            eject[ep_idx].bufs[vnet as usize][vc as usize].push_back(flit);
            ep_woken.wake(ep_idx);
            *last_progress = *cycle;
        });
        inject_credit_wire.deliver(|(ep_idx, vnet, vc, dealloc)| {
            inject[ep_idx].ds.on_credit(cfg, vnet, vc, dealloc);
        });
    }

    /// Ticks every router with pending work. The work list is either the
    /// drained active set or (always-scan engine) every router; both visit
    /// routers in ascending index order and apply the identical skip
    /// condition, which is what keeps the two engines cycle-exact.
    fn tick_routers(&mut self) {
        let mut list = std::mem::take(&mut self.router_scratch);
        self.router_active
            .drain_sorted_or_all(self.always_scan, &mut list);
        self.tick_router_list(&list);
        self.router_scratch = list;
    }

    /// Serial tick of an explicit router work list (ascending, deduped):
    /// the shared body of [`Network::tick_routers`] and the small-list
    /// fallback of the sharded tick.
    fn tick_router_list(&mut self, list: &[u32]) {
        let Network {
            topology,
            tables,
            route_tables,
            cfg,
            routers,
            inbox_flits,
            inbox_las,
            inbox_credits,
            outbox,
            esid_tile,
            esid_mc,
            flit_wire,
            la_wire,
            credit_wire,
            eject_wire,
            inject_credit_wire,
            router_active,
            always_scan,
            obs,
            ..
        } = self;
        let view = EsidView {
            tables,
            tile: esid_tile,
            mc: esid_mc,
        };
        let route = RouteCtx {
            tables,
            topo: topology,
            use_tables: *route_tables,
            datelines: topology.has_datelines(),
        };
        for &r in list {
            let ridx = r as usize;
            let router = &mut routers[ridx];
            let flits = &inbox_flits[ridx];
            let las = &inbox_las[ridx];
            let credits = &inbox_credits[ridx];
            if router.is_idle() && flits.is_empty() && las.is_empty() && credits.is_empty() {
                continue;
            }
            if let Some(o) = obs.as_deref_mut() {
                // Occupancy integral, sampled pre-tick over exactly the
                // routers both engines agree to tick.
                o.on_occupancy(u64::from(router.occupancy()));
            }
            outbox.clear();
            router.tick(
                &route,
                cfg,
                &view,
                flits,
                las,
                credits,
                outbox,
                obs.as_deref_mut(),
            );
            let rid = RouterId(ridx as u16);
            for ev in outbox.iter() {
                if let RouterOut::Flit { out_port, vc, flit } = ev {
                    if let Some(o) = obs.as_deref_mut() {
                        o.on_crossing(
                            ridx as u32,
                            out_port.index() as u8,
                            flit.packet.vnet.0,
                            *vc,
                            flit.packet.uid,
                        );
                    }
                }
                Self::route_router_out(
                    tables,
                    rid,
                    ev,
                    flit_wire,
                    la_wire,
                    credit_wire,
                    eject_wire,
                    inject_credit_wire,
                );
            }
            // A router with resident packets must tick again next cycle
            // even if no new arrivals wake it.
            if !*always_scan && !router.is_idle() {
                router_active.wake(ridx);
            }
        }
        for &r in list {
            let ridx = r as usize;
            inbox_flits[ridx].clear();
            inbox_las[ridx].clear();
            inbox_credits[ridx].clear();
        }
    }

    /// Compute phase of one cycle with the router phase sharded across
    /// `pool` when the active list is long enough to pay for dispatch.
    /// Byte-identical to [`Network::tick`]: workers tick disjoint
    /// contiguous chunks of the sorted work list (each router's tick
    /// depends only on its own state and the committed inboxes/ESID view),
    /// stage their events per lane, and the single-threaded routing phase
    /// replays them in exact serial order. Observability runs stay serial
    /// — the occupancy integral and trace hooks sample during the visit.
    pub(crate) fn tick_with_pool(&mut self, pool: &TickPool)
    where
        T: Send,
    {
        if self.obs.is_some() {
            self.tick();
            return;
        }
        self.deliver_wires();
        self.tick_routers_sharded(pool);
        self.tick_inject_ports();
    }

    fn tick_routers_sharded(&mut self, pool: &TickPool)
    where
        T: Send,
    {
        let mut list = std::mem::take(&mut self.router_scratch);
        self.router_active
            .drain_sorted_or_all(self.always_scan, &mut list);
        let lanes = pool.workers() + 1;
        if list.len() < SHARD_MIN_ROUTERS.max(lanes) {
            self.tick_router_list(&list);
            self.router_scratch = list;
            return;
        }
        let Network {
            topology,
            tables,
            route_tables,
            cfg,
            routers,
            inbox_flits,
            inbox_las,
            inbox_credits,
            esid_tile,
            esid_mc,
            flit_wire,
            la_wire,
            credit_wire,
            eject_wire,
            inject_credit_wire,
            router_active,
            always_scan,
            shards,
            ..
        } = self;
        while shards.len() < lanes {
            shards.push(ShardBuf::default());
        }
        let view = EsidView {
            tables,
            tile: esid_tile,
            mc: esid_mc,
        };
        let route = RouteCtx {
            tables,
            topo: topology,
            use_tables: *route_tables,
            datelines: topology.has_datelines(),
        };
        let chunk = list.len().div_ceil(lanes);
        let n_chunks = list.len().div_ceil(chunk);
        let ptrs = ShardPtrs {
            routers: routers.as_mut_ptr(),
            flits: inbox_flits.as_mut_ptr(),
            las: inbox_las.as_mut_ptr(),
            credits: inbox_credits.as_mut_ptr(),
            bufs: shards.as_mut_ptr(),
        };
        let list_ref: &[u32] = &list;
        pool.run(n_chunks, &|ci| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(list_ref.len());
            // SAFETY: the list is sorted and deduplicated, chunks are
            // disjoint contiguous slices of it, and `ci` values are
            // distinct — each worker has exclusive access to its routers,
            // inboxes and shard buffer for the duration of the batch.
            #[allow(unsafe_code)]
            unsafe {
                tick_shard(&ptrs, &list_ref[lo..hi], &route, cfg, &view, ci)
            };
        });
        // Serial phases in chunk order — which, chunks being contiguous
        // slices of the ascending list, is the exact serial wire-push and
        // re-arm order.
        for buf in shards.iter_mut().take(n_chunks) {
            let mut k = 0usize;
            for &(r, count) in &buf.spans {
                let rid = RouterId(r as u16);
                for ev in &buf.events[k..k + count as usize] {
                    Self::route_router_out(
                        tables,
                        rid,
                        ev,
                        flit_wire,
                        la_wire,
                        credit_wire,
                        eject_wire,
                        inject_credit_wire,
                    );
                }
                k += count as usize;
            }
            buf.events.clear();
            buf.spans.clear();
        }
        if !*always_scan {
            for &r in list.iter() {
                if !routers[r as usize].is_idle() {
                    router_active.wake(r as usize);
                }
            }
        }
        self.router_scratch = list;
    }

    /// One injection attempt per port with queued work (or per port, under
    /// the always-scan engine).
    fn tick_inject_ports(&mut self) {
        let mut list = std::mem::take(&mut self.inject_scratch);
        self.inject_active
            .drain_sorted_or_all(self.always_scan, &mut list);
        for &idx in &list {
            self.inject_try_send(idx as usize);
        }
        self.inject_scratch = list;
    }

    /// Clock edge: wires advance, staged ESIDs apply, time moves.
    pub fn commit(&mut self) {
        self.flit_wire.commit();
        self.la_wire.commit();
        self.credit_wire.commit();
        self.eject_wire.commit();
        self.inject_credit_wire.commit();
        for k in 0..self.staged_esid.len() {
            let (idx, esid) = self.staged_esid[k];
            self.esid[idx] = esid;
            // Keep the routers' per-slot view in sync incrementally: tile
            // endpoint indices coincide with tile numbers, MC indices
            // follow the tiles.
            if idx < self.tables.tile_count() {
                self.esid_tile[idx] = esid;
            } else {
                let r = self.topology.mc_routers()[idx - self.tables.tile_count()];
                self.esid_mc[r.index()] = esid;
            }
        }
        self.staged_esid.clear();
        self.cycle = self.cycle.next();
    }

    /// Clock edge for a provably idle cycle: only time advances. Valid
    /// exactly when [`Network::is_quiescent`] held at tick time — then the
    /// skipped tick and commit were no-ops apart from the cycle increment,
    /// which is what the multi-plane engine's idle-plane skip relies on.
    pub fn commit_idle(&mut self) {
        debug_assert!(self.is_quiescent(), "idle commit on a live network");
        self.cycle = self.cycle.next();
    }

    /// Clock advance for a provably idle *span*: equivalent to `delta`
    /// consecutive skipped-tick + [`Network::commit_idle`] cycles in one
    /// call. Valid exactly when [`Network::is_quiescent`] holds — then
    /// every wire slot is empty (so the skipped per-cycle wire rotations
    /// were no-ops), no router or port would have been visited, and the
    /// only state the skipped cycles would have changed is the clock.
    pub fn leap(&mut self, delta: u64) {
        debug_assert!(self.is_quiescent(), "leap over a live network");
        self.cycle += delta;
    }

    /// Whether ticking this network would be a no-op: no woken router or
    /// injection port, no in-flight wire traffic, no staged ESID update
    /// and no pending endpoint wake-up. External events (an injection, an
    /// ejection-buffer take returning a credit, an ESID publication) all
    /// break quiescence before the next tick, so a quiescent network can
    /// be skipped for a cycle without observable effect.
    pub fn is_quiescent(&self) -> bool {
        self.router_active.is_empty()
            && self.inject_active.is_empty()
            && self.ep_woken.is_empty()
            && self.staged_esid.is_empty()
            && self.wires_empty()
    }

    /// Convenience: `tick` + `commit`.
    pub fn step(&mut self) {
        self.tick();
        self.commit();
    }

    /// Steps until every injection queue, router and wire is drained or
    /// `max_cycles` pass. Returns `true` if fully drained. The harness must
    /// consume ejected flits via the `consume` callback, which receives the
    /// network once per cycle (before the tick).
    pub fn run_until_drained(
        &mut self,
        max_cycles: u64,
        mut consume: impl FnMut(&mut Network<T>),
    ) -> bool {
        for _ in 0..max_cycles {
            consume(self);
            self.step();
            if self.is_drained() {
                return true;
            }
        }
        false
    }

    /// Whether no packet is anywhere in the network (queues, buffers,
    /// wires). Ejection buffers must also be empty.
    pub fn is_drained(&self) -> bool {
        self.routers.iter().all(Router::is_idle)
            && self.inject.iter().all(|p| {
                p.queues.iter().all(Fifo::is_empty) && p.sending.iter().all(Option::is_none)
            })
            && self
                .eject
                .iter()
                .all(|p| p.bufs.iter().all(|vcs| vcs.iter().all(VecDeque::is_empty)))
            && self.wires_empty()
    }

    fn wires_empty(&self) -> bool {
        fn empty<E>(w: &Wire<E>) -> bool {
            w.staged.is_empty() && w.slots.iter().all(Vec::is_empty)
        }
        empty(&self.flit_wire)
            && empty(&self.la_wire)
            && empty(&self.credit_wire)
            && empty(&self.eject_wire)
            && empty(&self.inject_credit_wire)
    }

    #[allow(clippy::too_many_arguments)]
    fn route_router_out(
        tables: &RoutingTables,
        rid: RouterId,
        ev: &RouterOut<T>,
        flit_wire: &mut Wire<(RouterId, Port, u8, Flit<T>)>,
        la_wire: &mut Wire<(RouterId, Port, Flit<T>)>,
        credit_wire: &mut Wire<(RouterId, CreditArrival)>,
        eject_wire: &mut Wire<(usize, u8, u8, Flit<T>)>,
        inject_credit_wire: &mut Wire<(usize, u8, u8, bool)>,
    ) {
        match ev {
            RouterOut::Flit { out_port, vc, flit } => {
                if out_port.is_local() {
                    let ep = tables.local_ep_index(rid, *out_port);
                    eject_wire.push((ep, flit.packet.vnet.0, *vc, *flit));
                } else {
                    let n = tables
                        .neighbor(rid, *out_port)
                        .expect("ST off the fabric edge");
                    flit_wire.push((n, out_port.opposite(), *vc, *flit));
                }
            }
            RouterOut::La { out_port, flit } => {
                let n = tables
                    .neighbor(rid, *out_port)
                    .expect("LA off the fabric edge");
                la_wire.push((n, out_port.opposite(), *flit));
            }
            RouterOut::CreditUp {
                in_port,
                vnet,
                vc,
                dealloc,
            } => {
                if in_port.is_local() {
                    let ep = tables.local_ep_index(rid, *in_port);
                    inject_credit_wire.push((ep, *vnet, *vc, *dealloc));
                } else {
                    let n = tables
                        .neighbor(rid, *in_port)
                        .expect("credit off the fabric edge");
                    credit_wire.push((
                        n,
                        CreditArrival {
                            out_port: in_port.opposite(),
                            vnet: *vnet,
                            vc: *vc,
                            dealloc: *dealloc,
                        },
                    ));
                }
            }
        }
    }

    /// One injection attempt (at most one flit) for endpoint `idx`. While
    /// the port still holds work afterwards it re-arms itself in the
    /// active set, so a port with queued packets is probed every cycle —
    /// exactly as under the always-scan engine — and a drained port sleeps
    /// until the next [`Network::try_inject`].
    fn inject_try_send(&mut self, idx: usize) {
        let cfg = &self.cfg;
        let esid_tile = &self.esid_tile;
        let esid_mc = &self.esid_mc;
        let conc = self.tables.concentration() as usize;
        let port = &mut self.inject[idx];
        let vnets = cfg.vnets.len();
        let has_work =
            port.sending.iter().any(Option::is_some) || port.queues.iter().any(|q| !q.is_empty());
        if !has_work {
            return;
        }
        if !self.always_scan {
            self.inject_active.wake(idx);
        }
        for k in 0..vnets {
            let v = (port.next_vnet + k) % vnets;
            // Continue a multi-flit send first.
            if let Some(mut s) = port.sending[v].take() {
                if port.ds.has_credit(v as u8, s.vc) {
                    port.ds.take_credit(v as u8, s.vc);
                    let flit = Flit {
                        packet: s.packet,
                        idx: s.next_idx,
                    };
                    self.flit_wire
                        .push((port.router, port.local_in, s.vc, flit));
                    s.next_idx += 1;
                    if s.next_idx < s.packet.len_flits {
                        port.sending[v] = Some(s);
                    }
                    port.next_vnet = (v + 1) % vnets;
                    return;
                }
                port.sending[v] = Some(s);
                continue;
            }
            let Some(packet) = port.queues[v].front().copied() else {
                continue;
            };
            // Point-to-point ordering: same-SID exclusivity at the router
            // input port.
            if let Some(sid) = packet.sid {
                if port.ds.sid_in_flight(v as u8, sid) {
                    continue;
                }
            }
            // rVC eligibility at injection: some NIC local to this router
            // (any tile slot, or its MC port) expects this exact instance.
            let rvc_ok = packet
                .sid
                .map(|s| {
                    let expected = Some((s, packet.sid_seq));
                    let base = port.router.index() * conc;
                    esid_tile[base..base + conc].contains(&expected)
                        || esid_mc[port.router.index()] == expected
                })
                .unwrap_or(false);
            // Injection allocates at the router's *local* input port; the
            // dateline discipline only constrains mesh links.
            let Some(vc) = port
                .ds
                .alloc_vc(cfg, v as u8, packet.sid, rvc_ok, VcClass::Any)
            else {
                continue;
            };
            port.queues[v].pop();
            if let Some(o) = self.obs.as_deref_mut() {
                o.on_injected(
                    self.cycle.as_u64(),
                    idx as u32,
                    port.router.0 as u32,
                    port.local_in.index() as u8,
                    v as u8,
                    vc,
                    packet.uid,
                    self.cycle - packet.inject_cycle,
                );
            }
            let head = Flit { packet, idx: 0 };
            if cfg.bypass && packet.len_flits == 1 {
                self.la_wire.push((port.router, port.local_in, head));
            }
            self.flit_wire.push((port.router, port.local_in, vc, head));
            if packet.len_flits > 1 {
                port.sending[v] = Some(SendState {
                    packet,
                    next_idx: 1,
                    vc,
                });
            }
            port.next_vnet = (v + 1) % vnets;
            self.last_progress = self.cycle;
            return;
        }
    }
}

impl<T: Payload> std::fmt::Debug for Network<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("topology", &self.topology.label())
            .field("cycle", &self.cycle)
            .field("injected", &self.stats.injected_packets)
            .field("delivered", &self.stats.delivered_packets)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flit::Dest;
    use crate::topology::{Mesh, Ring, Torus};

    fn drain_all(net: &mut Network<u64>, max: u64) -> Vec<(Endpoint, Flit<u64>)> {
        let mut got = Vec::new();
        for _ in 0..max {
            let eps: Vec<Endpoint> = net.mesh().endpoints().collect();
            for ep in eps {
                let slots: Vec<EjectSlot> = net.eject_heads(ep).map(|(s, _)| s).collect();
                for s in slots {
                    if let Some(f) = net.eject_take(ep, s) {
                        got.push((ep, f));
                    }
                }
            }
            net.step();
            if net.is_drained() {
                break;
            }
        }
        got
    }

    #[test]
    fn unicast_response_delivered_once() {
        let mesh = Mesh::square_with_corner_mcs(4);
        let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        let src = Endpoint::tile(RouterId(0));
        let dst = Endpoint::tile(RouterId(15));
        let uid = net
            .try_inject(src, Packet::response(src, dst, 3, 42))
            .unwrap();
        let got = drain_all(&mut net, 200);
        assert!(net.is_drained(), "network failed to drain");
        // 3 flits, all at the destination, in order.
        let flits: Vec<_> = got.iter().filter(|(ep, _)| *ep == dst).collect();
        assert_eq!(flits.len(), 3);
        assert_eq!(flits[0].1.idx, 0);
        assert_eq!(flits[2].1.idx, 2);
        assert!(flits.iter().all(|(_, f)| f.packet.payload == 42));
        assert_eq!(net.deliveries(uid), 1);
    }

    #[test]
    fn broadcast_reaches_every_other_endpoint_exactly_once() {
        let mesh = Mesh::square_with_corner_mcs(4);
        let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        let src = Endpoint::tile(RouterId(5));
        let uid = net
            .try_inject(src, Packet::request(src, Sid(5), 0, 99))
            .unwrap();
        let got = drain_all(&mut net, 400);
        assert!(net.is_drained(), "network failed to drain");
        // 16 tiles - 1 source + 4 MC endpoints = 19 copies.
        assert_eq!(net.deliveries(uid), 19);
        let mut seen = std::collections::HashSet::new();
        for (ep, f) in &got {
            assert_eq!(f.packet.payload, 99);
            assert!(seen.insert(*ep), "duplicate delivery at {ep}");
        }
        assert!(!seen.contains(&src));
    }

    #[test]
    fn broadcasts_from_all_sources_all_delivered() {
        let mesh = Mesh::square_with_corner_mcs(3);
        let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        let mut uids = Vec::new();
        for r in 0..9u16 {
            let src = Endpoint::tile(RouterId(r));
            let uid = net
                .try_inject(src, Packet::request(src, Sid(r), 0, r as u64))
                .unwrap();
            uids.push(uid);
        }
        drain_all(&mut net, 2000);
        assert!(net.is_drained(), "network failed to drain");
        for &uid in &uids {
            assert_eq!(net.deliveries(uid), 8 + 4, "uid {uid}");
        }
        // The per-uid map is append-only while tracking; tests that assert
        // on it drain it once done so long traffic phases stay bounded.
        net.clear_deliveries();
        assert_eq!(net.deliveries(uids[0]), 0);
    }

    #[test]
    fn zero_load_unicast_latency_reflects_bypass() {
        // Single-flit UO-RESP unicast across a 4x4 mesh with bypassing:
        // inject (2) + per-hop (2) * hops + ejection consumption.
        let mesh = Mesh::new(4, 4, &[]);
        let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        let src = Endpoint::tile(RouterId(0));
        let dst = Endpoint::tile(RouterId(3)); // 3 hops east
        net.try_inject(src, Packet::response(src, dst, 1, 1))
            .unwrap();
        let got = drain_all(&mut net, 100);
        assert_eq!(got.len(), 1);
        let lat = net.stats().packet_latency.mean();
        // 4 router traversals (src router + 3) at 1 cycle bypassed + links
        // + injection and ejection wires; anything ≤ 14 means bypassing is
        // working (the buffered path would exceed that).
        assert!(lat <= 14.0, "latency {lat} too high — bypass broken?");
        let s = net.stats();
        assert!(s.bypassed_flits > 0, "no flit ever bypassed");
    }

    #[test]
    fn bypass_disabled_increases_latency() {
        let mut fast_cfg = NocConfig::scorpio();
        fast_cfg.track_deliveries = false;
        let mut slow_cfg = fast_cfg.clone();
        slow_cfg.bypass = false;

        let run = |cfg: NocConfig| -> f64 {
            let mut net: Network<u64> = Network::new(Mesh::new(4, 4, &[]), cfg);
            let src = Endpoint::tile(RouterId(0));
            let dst = Endpoint::tile(RouterId(15));
            net.try_inject(src, Packet::response(src, dst, 1, 1))
                .unwrap();
            drain_all(&mut net, 300);
            net.stats().packet_latency.mean()
        };
        let fast = run(fast_cfg);
        let slow = run(slow_cfg);
        assert!(
            slow > fast + 5.0,
            "expected 3-stage path ({slow}) to be clearly slower than bypass ({fast})"
        );
    }

    #[test]
    fn heavy_random_traffic_drains_without_loss() {
        use scorpio_sim::SimRng;
        let mesh = Mesh::square_with_corner_mcs(4);
        let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        let mut rng = SimRng::seed_from(1234);
        let eps: Vec<Endpoint> = net.mesh().endpoints().collect();
        let mut injected = 0u64;
        let mut consumed = 0u64;
        for cycle in 0..3000u64 {
            // Random injections for the first 1500 cycles.
            if cycle < 1500 {
                for &ep in &eps {
                    if rng.chance(0.05) {
                        let to = eps[rng.gen_range_usize(eps.len())];
                        let pkt = if ep.slot.is_tile() && rng.chance(0.4) {
                            Packet::request(ep, Sid(ep.router.0), cycle as u16, cycle)
                        } else if to != ep {
                            Packet::response(ep, to, 3, cycle)
                        } else {
                            continue;
                        };
                        if net.try_inject(ep, pkt).is_ok() {
                            injected += 1;
                        }
                    }
                }
            }
            for &ep in &eps {
                let slots: Vec<EjectSlot> = net.eject_heads(ep).map(|(s, _)| s).collect();
                for s in slots {
                    if net.eject_take(ep, s).is_some() {
                        consumed += 1;
                    }
                }
            }
            net.step();
            if cycle > 1500 && net.is_drained() {
                break;
            }
        }
        assert!(net.is_drained(), "network wedged under random traffic");
        assert!(injected > 100, "test generated too little traffic");
        assert!(
            consumed > injected,
            "broadcast copies should multiply flits"
        );
    }

    #[test]
    fn inject_backpressure_reports_full() {
        let mesh = Mesh::new(2, 2, &[]);
        let mut cfg = NocConfig::scorpio();
        cfg.inject_queue_depth = 2;
        let mut net: Network<u64> = Network::new(mesh, cfg);
        let src = Endpoint::tile(RouterId(0));
        let dst = Endpoint::tile(RouterId(3));
        // Queue depth 2: third push without ticking must fail.
        net.try_inject(src, Packet::response(src, dst, 1, 0))
            .unwrap();
        net.try_inject(src, Packet::response(src, dst, 1, 1))
            .unwrap();
        assert!(net
            .try_inject(src, Packet::response(src, dst, 1, 2))
            .is_err());
        assert_eq!(net.inject_backlog(src), 2);
    }

    #[test]
    fn esid_is_staged_until_commit() {
        let mesh = Mesh::new(2, 2, &[]);
        let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        let ep = Endpoint::tile(RouterId(0));
        net.set_esid(ep, Some((Sid(3), 0)));
        assert_eq!(net.esid(ep), None);
        net.step();
        assert_eq!(net.esid(ep), Some((Sid(3), 0)));
    }

    #[test]
    fn multi_flit_packets_arrive_in_order_under_load() {
        let mesh = Mesh::new(4, 1, &[]);
        let mut net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        let dst = Endpoint::tile(RouterId(3));
        for r in 0..3u16 {
            let src = Endpoint::tile(RouterId(r));
            for k in 0..4u64 {
                net.try_inject(src, Packet::response(src, dst, 3, r as u64 * 10 + k))
                    .unwrap();
            }
        }
        let got = drain_all(&mut net, 2000);
        assert!(net.is_drained());
        assert_eq!(got.len(), 3 * 4 * 3);
        // Per-packet flit order must be 0,1,2 in consumption order.
        let mut per_uid: std::collections::HashMap<u64, Vec<u8>> = Default::default();
        for (_, f) in got {
            per_uid.entry(f.packet.uid).or_default().push(f.idx);
        }
        for (uid, idxs) in per_uid {
            assert_eq!(idxs, vec![0, 1, 2], "packet {uid} flits out of order");
        }
    }

    #[test]
    fn endpoint_indexing_is_dense_and_stable() {
        let mesh = Mesh::scorpio_chip();
        let net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        assert_eq!(net.endpoint_index(Endpoint::tile(RouterId(0))), 0);
        assert_eq!(net.endpoint_index(Endpoint::tile(RouterId(35))), 35);
        assert_eq!(net.endpoint_index(Endpoint::mc(RouterId(0))), 36);
        assert_eq!(net.endpoint_index(Endpoint::mc(RouterId(35))), 39);
    }

    #[test]
    #[should_panic(expected = "no MC port")]
    fn mc_index_at_non_mc_router_panics() {
        let mesh = Mesh::scorpio_chip();
        let net: Network<u64> = Network::new(mesh, NocConfig::scorpio());
        let _ = net.endpoint_index(Endpoint::mc(RouterId(1)));
    }

    #[test]
    fn broadcast_on_unordered_vnet_works() {
        // TokenB/INSO-style: broadcast without SID on the request vnet.
        let mesh = Mesh::new(3, 3, &[]);
        let mut cfg = NocConfig::scorpio();
        cfg.vnets[0].ordered = false;
        let mut net: Network<u64> = Network::new(mesh, cfg);
        let src = Endpoint::tile(RouterId(4));
        let uid = net
            .try_inject(src, Packet::broadcast_unordered(VnetId(0), src, 7))
            .unwrap();
        drain_all(&mut net, 300);
        assert!(net.is_drained());
        assert_eq!(net.deliveries(uid), 8);
    }

    #[test]
    fn dest_debug_formats() {
        let d = Dest::Broadcast;
        assert!(format!("{d:?}").contains("Broadcast"));
    }

    #[test]
    fn cmesh_broadcast_reaches_every_endpoint_including_siblings() {
        // 4 routers x 2 tiles + 4 MC ports = 12 endpoints. A broadcast
        // from tile slot 1 of router 0 must reach its *sibling* slot 0
        // (through the router, not the mesh), every remote slot, and every
        // MC port — 11 copies, each exactly once.
        let cm = crate::topology::CMesh::with_corner_mcs(2, 2, 2);
        let mut net: Network<u64> = Network::new(cm, NocConfig::scorpio());
        let src = Endpoint::tile_slot(RouterId(0), 1);
        let uid = net
            .try_inject(src, Packet::request(src, Sid(1), 0, 77))
            .unwrap();
        let got = drain_all(&mut net, 400);
        assert!(net.is_drained(), "cmesh failed to drain");
        assert_eq!(net.deliveries(uid), 11);
        let mut seen = std::collections::HashSet::new();
        for (ep, f) in &got {
            assert_eq!(f.packet.payload, 77);
            assert!(seen.insert(*ep), "duplicate delivery at {ep}");
        }
        assert!(!seen.contains(&src), "source must self-deliver via NIC");
        assert!(
            seen.contains(&Endpoint::tile(RouterId(0))),
            "sibling slot 0 of the source router missed the broadcast"
        );
    }

    #[test]
    fn cmesh_unicast_targets_the_exact_slot() {
        let cm = crate::topology::CMesh::with_corner_mcs(2, 2, 4);
        let mut net: Network<u64> = Network::new(cm, NocConfig::scorpio());
        let src = Endpoint::tile_slot(RouterId(0), 0);
        let dst = Endpoint::tile_slot(RouterId(3), 2);
        net.try_inject(src, Packet::response(src, dst, 3, 9))
            .unwrap();
        let got = drain_all(&mut net, 300);
        assert!(net.is_drained());
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|(ep, _)| *ep == dst), "wrong slot ejected");
    }

    #[test]
    fn cmesh_heavy_random_traffic_drains_without_loss() {
        use scorpio_sim::SimRng;
        let cm = crate::topology::CMesh::with_corner_mcs(3, 2, 2);
        let mut net: Network<u64> = Network::new(cm, NocConfig::scorpio());
        let mut rng = SimRng::seed_from(99);
        let eps: Vec<Endpoint> = net.topology().endpoints().collect();
        let n_tiles = net.topology().tile_count();
        let mut injected = 0u64;
        for cycle in 0..4000u64 {
            if cycle < 1500 {
                for (i, &ep) in eps.iter().enumerate() {
                    if rng.chance(0.05) {
                        let to = eps[rng.gen_range_usize(eps.len())];
                        let pkt = if ep.slot.is_tile() && rng.chance(0.4) {
                            Packet::request(ep, Sid(i as u16), cycle as u16, cycle)
                        } else if to != ep {
                            Packet::response(ep, to, 3, cycle)
                        } else {
                            continue;
                        };
                        if net.try_inject(ep, pkt).is_ok() {
                            injected += 1;
                        }
                    }
                }
            }
            for &ep in &eps {
                let slots: Vec<EjectSlot> = net.eject_heads(ep).map(|(s, _)| s).collect();
                for s in slots {
                    net.eject_take(ep, s);
                }
            }
            net.step();
            if cycle > 1500 && net.is_drained() {
                break;
            }
        }
        assert!(net.is_drained(), "cmesh wedged under random traffic");
        assert!(injected > 100, "too little traffic");
        assert_eq!(n_tiles, 12);
    }

    #[test]
    fn broadcast_reaches_everyone_on_torus_and_ring() {
        for topo in [
            Topology::from(Torus::square_with_corner_mcs(4)),
            Topology::from(Ring::with_spread_mcs(16, 4)),
        ] {
            let n_eps = topo.endpoints().count();
            let mut net: Network<u64> = Network::new(topo.clone(), NocConfig::scorpio());
            let src = Endpoint::tile(RouterId(5));
            let uid = net
                .try_inject(src, Packet::request(src, Sid(5), 0, 99))
                .unwrap();
            let got = drain_all(&mut net, 600);
            assert!(net.is_drained(), "{} failed to drain", topo.label());
            assert_eq!(net.deliveries(uid) as usize, n_eps - 1, "{}", topo.label());
            let mut seen = std::collections::HashSet::new();
            for (ep, _) in &got {
                assert!(seen.insert(*ep), "duplicate delivery at {ep}");
            }
        }
    }

    #[test]
    fn torus_unicast_takes_the_wraparound_shortcut() {
        // 0 -> 3 on a 4x4 torus is one hop west; the mesh needs three east.
        let run = |topo: Topology| -> f64 {
            let mut cfg = NocConfig::scorpio();
            cfg.track_deliveries = false;
            let mut net: Network<u64> = Network::new(topo, cfg);
            let src = Endpoint::tile(RouterId(0));
            let dst = Endpoint::tile(RouterId(3));
            net.try_inject(src, Packet::response(src, dst, 1, 1))
                .unwrap();
            drain_all(&mut net, 200);
            net.stats().packet_latency.mean()
        };
        let mesh_lat = run(Mesh::new(4, 4, &[]).into());
        let torus_lat = run(Torus::new(4, 4, &[]).into());
        assert!(
            torus_lat < mesh_lat,
            "wrap link unused: torus {torus_lat} >= mesh {mesh_lat}"
        );
    }

    #[test]
    fn heavy_random_traffic_drains_on_wraparound_fabrics() {
        use scorpio_sim::SimRng;
        for topo in [
            Topology::from(Torus::square_with_corner_mcs(4)),
            Topology::from(Ring::with_spread_mcs(12, 4)),
        ] {
            let mut net: Network<u64> = Network::new(topo.clone(), NocConfig::scorpio());
            let mut rng = SimRng::seed_from(4321);
            let eps: Vec<Endpoint> = net.topology().endpoints().collect();
            let mut injected = 0u64;
            for cycle in 0..4000u64 {
                if cycle < 1500 {
                    for &ep in &eps {
                        if rng.chance(0.05) {
                            let to = eps[rng.gen_range_usize(eps.len())];
                            let pkt = if ep.slot.is_tile() && rng.chance(0.4) {
                                Packet::request(ep, Sid(ep.router.0), cycle as u16, cycle)
                            } else if to != ep {
                                Packet::response(ep, to, 3, cycle)
                            } else {
                                continue;
                            };
                            if net.try_inject(ep, pkt).is_ok() {
                                injected += 1;
                            }
                        }
                    }
                }
                for &ep in &eps {
                    let slots: Vec<EjectSlot> = net.eject_heads(ep).map(|(s, _)| s).collect();
                    for s in slots {
                        net.eject_take(ep, s);
                    }
                }
                net.step();
                if cycle > 1500 && net.is_drained() {
                    break;
                }
            }
            assert!(
                net.is_drained(),
                "{} wedged under random traffic (dateline classes broken?)",
                topo.label()
            );
            assert!(injected > 100, "too little traffic on {}", topo.label());
        }
    }

    #[test]
    fn coordinate_routing_reference_engine_is_cycle_exact() {
        // Same traffic, tables on vs off: identical ejection log and drain
        // cycle — the tables are the spec, memoized.
        use scorpio_sim::SimRng;
        for topo in [
            Topology::from(Mesh::new(4, 3, &[RouterId(0), RouterId(11)])),
            Topology::from(Torus::square_with_corner_mcs(4)),
            Topology::from(Ring::with_spread_mcs(9, 3)),
        ] {
            let run = |tables: bool| -> Vec<(u64, u64)> {
                let mut net: Network<u64> = Network::new(topo.clone(), NocConfig::scorpio());
                net.set_table_routing(tables);
                let eps: Vec<Endpoint> = net.topology().endpoints().collect();
                let mut rng = SimRng::seed_from(7);
                let mut log = Vec::new();
                for cycle in 0..1200u64 {
                    if cycle < 400 {
                        for &ep in &eps {
                            if rng.chance(0.04) {
                                let to = eps[rng.gen_range_usize(eps.len())];
                                if ep.slot.is_tile() && rng.chance(0.5) {
                                    let _ = net.try_inject(
                                        ep,
                                        Packet::request(ep, Sid(ep.router.0), cycle as u16, cycle),
                                    );
                                } else if to != ep {
                                    let _ = net.try_inject(ep, Packet::response(ep, to, 3, cycle));
                                }
                            }
                        }
                    }
                    for &ep in &eps {
                        let slots: Vec<EjectSlot> = net.eject_heads(ep).map(|(s, _)| s).collect();
                        for s in slots {
                            if let Some(f) = net.eject_take(ep, s) {
                                log.push((cycle, f.packet.uid));
                            }
                        }
                    }
                    net.step();
                    if cycle > 400 && net.is_drained() {
                        break;
                    }
                }
                assert!(
                    net.is_drained(),
                    "{} wedged (tables={tables})",
                    topo.label()
                );
                log
            };
            assert_eq!(run(true), run(false), "divergence on {}", topo.label());
        }
    }
}
