//! Compiled routing tables: the per-flit hot path of the router.
//!
//! The [`Topology`] routing *spec* ([`Topology::unicast_hop`],
//! [`Topology::broadcast_hop`]) is coordinate arithmetic — modular
//! distances, tie-breaks, dateline tests. Evaluating it for every arriving
//! head flit and every lookahead is pure per-flit overhead, so
//! [`RoutingTables::build`] evaluates the spec once per (router,
//! destination) / (source, router, arrival) point at network construction
//! and the routers route by flat array lookup from then on. The
//! `route-lookup` self-benchmark scenario measures the win by running the
//! same sweep with [`RouteCtx::use_tables`] off (the coordinate-routing
//! reference engine), which the equivalence suite holds byte-identical.
//!
//! The tables also carry the *dateline VC class* of every hop: on
//! wraparound fabrics (torus, ring) each regular-VC pool is split into a
//! class-0 and a class-1 partition, flits switch partitions exactly once —
//! when their remaining path clears the wraparound link — and the switch
//! breaks every ring's channel-dependency cycle (DESIGN.md §10). On a mesh
//! every hop is [`VcClass::Any`] and allocation is exactly what it was
//! before the tables existed.

use crate::config::NocConfig;
use crate::flit::{Dest, Packet, Payload};
use crate::topology::{Endpoint, LocalSlot, Port, PortMask, RouterId, Topology};

/// Dateline VC-class constraint on one downstream VC allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VcClass {
    /// No constraint (mesh links, local ports, rVC escapes).
    Any,
    /// Pre-dateline: only the lower half of the regular VCs.
    C0,
    /// Post-dateline: only the upper half of the regular VCs.
    C1,
}

impl VcClass {
    /// The regular-VC index range this class may allocate from.
    #[inline]
    pub(crate) fn regular_range(self, vcs: u8) -> std::ops::Range<usize> {
        match self {
            VcClass::Any => 0..vcs as usize,
            VcClass::C0 => 0..(vcs / 2) as usize,
            VcClass::C1 => (vcs / 2) as usize..vcs as usize,
        }
    }
}

/// A routed output set: the ports to fork through plus, per port, whether
/// the downstream VC must come from the class-1 partition.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RouteMask {
    /// Output ports (mesh ports + local deliveries).
    pub mask: PortMask,
    /// Class-1 bit per [`Port::index`].
    pub classes: u8,
}

/// Index of an arrival slot: the four cardinal ports plus "at source".
#[inline]
fn arrival_index(arrived_on: Option<Port>) -> usize {
    match arrived_on {
        None => 4,
        Some(p) => {
            debug_assert!(!p.is_local(), "broadcast cannot arrive on a local port");
            p.index()
        }
    }
}

const ARRIVALS: usize = 5;
const ABSENT: u16 = u16::MAX;

/// Precomputed routing state for one topology instance.
///
/// * `unicast[here * n_endpoints + ep]` — output port + class bit,
/// * `broadcast[(src_tile * n_routers + here) * 5 + arrival]` — fork mask
///   plus class bits, keyed by the *source endpoint's* tile index (on a
///   concentrated fabric the fork mask depends on which slot injected:
///   the source slot self-delivers, its siblings are fed by the router),
/// * `neighbor[router * 9 + port]` — link table ([`ABSENT`] = no link),
/// * `mc_rank[router]` — dense MC index ([`ABSENT`] = no MC port).
pub(crate) struct RoutingTables {
    n_routers: usize,
    n_endpoints: usize,
    n_tiles: usize,
    /// Tiles per router (the topology's concentration).
    concentration: u8,
    /// Packed `port.index() | (class1 << 4)`.
    unicast: Vec<u8>,
    /// `(mask bits, class bits)`.
    broadcast: Vec<(u16, u8)>,
    /// Elements the broadcast index advances per source tile: mesh (and
    /// single-tile CMesh) broadcast masks are independent of the source
    /// (`at_source` is decided by the arrival port alone), so those
    /// fabrics collapse the source dimension entirely (`stride == 0`) —
    /// O(routers) entries instead of O(tiles × routers).
    broadcast_src_stride: usize,
    neighbor: Vec<u16>,
    mc_rank: Vec<u16>,
}

impl RoutingTables {
    /// Evaluates the routing spec of `topo` at every table point.
    pub(crate) fn build(topo: &Topology) -> RoutingTables {
        let n_routers = topo.router_count();
        let n_tiles = topo.tile_count();
        let concentration = topo.tiles_per_router();
        let endpoints: Vec<Endpoint> = topo.endpoints().collect();
        let n_endpoints = endpoints.len();

        let mut unicast = Vec::with_capacity(n_routers * n_endpoints);
        for r in topo.routers() {
            for &ep in &endpoints {
                let (port, class1) = topo.unicast_hop(r, ep);
                unicast.push(port.index() as u8 | (u8::from(class1) << 4));
            }
        }

        // Mesh broadcast trees ignore the source entirely, and a
        // single-tile CMesh has no sibling slot to skip, so one source
        // slice serves every source; wraparound fabrics key their fork
        // budgets on the source router, and concentrated fabrics key the
        // local-delivery set on the source slot — both store the cube.
        let src_independent = match topo {
            Topology::Mesh(_) => true,
            Topology::CMesh(c) => c.concentration() == 1,
            _ => false,
        };
        let broadcast_src_stride = if src_independent {
            0
        } else {
            n_routers * ARRIVALS
        };
        let sources: usize = if src_independent { 1 } else { n_tiles };
        let mut broadcast = Vec::with_capacity(sources * n_routers * ARRIVALS);
        for src_tile in 0..sources {
            let src = topo.tile_endpoint(src_tile);
            for here in topo.routers() {
                for arr in 0..ARRIVALS {
                    let arrived_on = if arr == 4 { None } else { Some(Port::ALL[arr]) };
                    // Only probe arrivals that have a physical incoming
                    // link (a flit cannot arrive on a port that is not
                    // wired — e.g. North on a ring); absent-link slots stay
                    // empty and are never queried.
                    let wired = match arrived_on {
                        None => true,
                        Some(p) => topo.neighbor(here, p).is_some(),
                    };
                    if wired {
                        let (mask, classes) = topo.broadcast_hop(src, here, arrived_on);
                        broadcast.push((mask.bits(), classes));
                    } else {
                        broadcast.push((0, 0));
                    }
                }
            }
        }

        let mut neighbor = Vec::with_capacity(n_routers * Port::COUNT);
        for r in topo.routers() {
            for port in Port::ALL {
                neighbor.push(match topo.neighbor(r, port) {
                    Some(n) => n.0,
                    None => ABSENT,
                });
            }
        }

        let mut mc_rank = vec![ABSENT; n_routers];
        for (rank, &r) in topo.mc_routers().iter().enumerate() {
            mc_rank[r.index()] = rank as u16;
        }

        RoutingTables {
            n_routers,
            n_endpoints,
            n_tiles,
            concentration,
            unicast,
            broadcast,
            broadcast_src_stride,
            neighbor,
            mc_rank,
        }
    }

    /// Unicast lookup: output port + class-1 bit at `here` toward the
    /// endpoint with dense index `ep_idx`.
    #[inline]
    pub(crate) fn unicast(&self, here: RouterId, ep_idx: usize) -> (Port, bool) {
        let packed = self.unicast[here.index() * self.n_endpoints + ep_idx];
        (Port::ALL[(packed & 0xF) as usize], packed & 0x10 != 0)
    }

    /// Broadcast lookup: fork mask + class bits at `here` for the
    /// broadcast from the endpoint `src` arriving through `arrived_on`.
    #[inline]
    pub(crate) fn broadcast(
        &self,
        src: Endpoint,
        here: RouterId,
        arrived_on: Option<Port>,
    ) -> (PortMask, u8) {
        // Tile sources index the source dimension by tile number; an MC
        // source (possible on unordered vnets, unconcentrated fabrics
        // only) borrows its router's slot-0 tile entry, which is exact
        // there because the slot never affects the mask. On a concentrated
        // fabric a tile-source entry suppresses that slot's delivery, so
        // MC sources are rejected rather than silently mis-delivered.
        let src_idx = match src.slot {
            LocalSlot::Tile(k) => src.router.index() * self.concentration as usize + k as usize,
            LocalSlot::Mc => {
                debug_assert!(
                    self.concentration == 1,
                    "MC-source broadcasts are undefined on concentrated fabrics"
                );
                src.router.index() * self.concentration as usize
            }
        };
        let idx = src_idx * self.broadcast_src_stride
            + here.index() * ARRIVALS
            + arrival_index(arrived_on);
        let (mask, classes) = self.broadcast[idx];
        (PortMask::from_bits(mask), classes)
    }

    /// Link lookup.
    #[inline]
    pub(crate) fn neighbor(&self, r: RouterId, port: Port) -> Option<RouterId> {
        match self.neighbor[r.index() * Port::COUNT + port.index()] {
            ABSENT => None,
            n => Some(RouterId(n)),
        }
    }

    /// Whether `r` hosts a memory-controller port.
    #[inline]
    pub(crate) fn has_mc(&self, r: RouterId) -> bool {
        self.mc_rank[r.index()] != ABSENT
    }

    /// The dense MC rank of `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` hosts no MC port.
    #[inline]
    pub(crate) fn mc_rank(&self, r: RouterId) -> usize {
        let rank = self.mc_rank[r.index()];
        assert!(rank != ABSENT, "no MC port at {r}");
        rank as usize
    }

    /// The dense index of `ep` (tiles first, then MC ports) — the table
    /// form of [`Topology::endpoint_index`].
    #[inline]
    pub(crate) fn endpoint_index(&self, ep: Endpoint) -> usize {
        match ep.slot {
            LocalSlot::Tile(k) => {
                debug_assert!(ep.router.index() < self.n_routers && k < self.concentration);
                ep.router.index() * self.concentration as usize + k as usize
            }
            LocalSlot::Mc => self.n_tiles + self.mc_rank(ep.router),
        }
    }

    /// The dense endpoint index served by local output `port` of router
    /// `r` — the ejection-wire demux (tile slot `k` of router `r` is
    /// endpoint `r·c + k`; the MC port is `n_tiles + mc_rank`).
    ///
    /// # Panics
    ///
    /// Panics if `port` is not a local port of `r`.
    #[inline]
    pub(crate) fn local_ep_index(&self, r: RouterId, port: Port) -> usize {
        match port.tile_index() {
            Some(k) => {
                debug_assert!(k < self.concentration, "tile slot {k} absent at {r}");
                r.index() * self.concentration as usize + k as usize
            }
            None => {
                debug_assert_eq!(port, Port::Mc, "not a local port");
                self.n_tiles + self.mc_rank(r)
            }
        }
    }

    /// Tile count the tables were built for.
    #[inline]
    pub(crate) fn tile_count(&self) -> usize {
        self.n_tiles
    }

    /// Tiles per router.
    #[inline]
    pub(crate) fn concentration(&self) -> u8 {
        self.concentration
    }
}

/// The routing view handed to routers each tick: compiled tables plus the
/// spec they were compiled from, and the switch between them.
pub(crate) struct RouteCtx<'a> {
    pub tables: &'a RoutingTables,
    pub topo: &'a Topology,
    /// Table lookups (default) vs per-flit spec evaluation (the
    /// coordinate-routing reference engine behind `route-lookup`).
    pub use_tables: bool,
    /// Whether dateline VC classes are in force (wraparound fabrics).
    pub datelines: bool,
}

impl RouteCtx<'_> {
    /// Routes `packet` at `here`: the full output set plus per-port
    /// dateline classes.
    pub(crate) fn route<T: Payload>(
        &self,
        here: RouterId,
        packet: &Packet<T>,
        arrived_on: Option<Port>,
    ) -> RouteMask {
        match packet.dest {
            Dest::Unicast(ep) => {
                let (port, class1) = if self.use_tables {
                    self.tables.unicast(here, self.tables.endpoint_index(ep))
                } else {
                    self.topo.unicast_hop(here, ep)
                };
                RouteMask {
                    mask: PortMask::single(port),
                    // Class bits exist only on the four cardinal ports
                    // (index < 4); a local ejection (up to index 8) never
                    // carries one, so the shift must be guarded.
                    classes: if class1 { 1 << port.index() } else { 0 },
                }
            }
            Dest::Broadcast => {
                let src = packet.src;
                let (mask, classes) = if self.use_tables {
                    self.tables.broadcast(src, here, arrived_on)
                } else {
                    self.topo.broadcast_hop(src, here, arrived_on)
                };
                RouteMask { mask, classes }
            }
        }
    }

    /// The VC-class constraint for allocating toward `port` given a
    /// route's class bits.
    #[inline]
    pub(crate) fn class_for(&self, classes: u8, port: Port) -> VcClass {
        if !self.datelines || port.is_local() {
            VcClass::Any
        } else if classes & (1 << port.index()) != 0 {
            VcClass::C1
        } else {
            VcClass::C0
        }
    }
}

/// Validates that `cfg` can support dateline classes when `topo` needs
/// them: every vnet must have at least two regular VCs to split.
pub(crate) fn validate_datelines(topo: &Topology, cfg: &NocConfig) {
    if !topo.has_datelines() {
        return;
    }
    for v in &cfg.vnets {
        assert!(
            v.vcs >= 2,
            "wraparound topology {} needs >= 2 regular VCs per vnet for \
             dateline classes; vnet {} has {}",
            topo.label(),
            v.name,
            v.vcs
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Mesh, Ring, Torus};

    fn packet_to(ep: Endpoint) -> Packet<u32> {
        Packet::unicast(
            crate::flit::VnetId(1),
            Endpoint::tile(RouterId(0)),
            ep,
            1,
            0,
        )
    }

    /// Tables and spec must agree at every point — they are the same
    /// function, memoized.
    #[test]
    fn tables_match_the_spec_everywhere() {
        for topo in [
            Topology::from(Mesh::new(5, 3, &[RouterId(2), RouterId(14)])),
            Topology::from(Torus::new(4, 4, &[RouterId(0), RouterId(15)])),
            Topology::from(Ring::with_spread_mcs(9, 3)),
            Topology::from(crate::topology::CMesh::with_corner_mcs(3, 2, 2)),
            Topology::from(crate::topology::CMesh::with_corner_mcs(2, 2, 4)),
        ] {
            let tables = RoutingTables::build(&topo);
            let endpoints: Vec<Endpoint> = topo.endpoints().collect();
            for r in topo.routers() {
                for (i, &ep) in endpoints.iter().enumerate() {
                    assert_eq!(
                        tables.unicast(r, i),
                        topo.unicast_hop(r, ep),
                        "unicast {r} -> {ep} on {}",
                        topo.label()
                    );
                }
                for src_tile in 0..topo.tile_count() {
                    let src = topo.tile_endpoint(src_tile);
                    for arr in [
                        None,
                        Some(Port::North),
                        Some(Port::South),
                        Some(Port::East),
                        Some(Port::West),
                    ] {
                        // The spec is only defined for arrivals with a
                        // physical incoming link.
                        if arr.is_some_and(|p| topo.neighbor(r, p).is_none()) {
                            continue;
                        }
                        assert_eq!(
                            tables.broadcast(src, r, arr),
                            topo.broadcast_hop(src, r, arr),
                            "broadcast src={src} here={r} arr={arr:?} on {}",
                            topo.label()
                        );
                    }
                }
                for port in Port::ALL {
                    assert_eq!(tables.neighbor(r, port), topo.neighbor(r, port));
                }
                assert_eq!(tables.has_mc(r), topo.has_mc(r));
            }
            for (i, ep) in topo.endpoints().enumerate() {
                assert_eq!(tables.endpoint_index(ep), i);
                assert_eq!(tables.endpoint_index(ep), topo.endpoint_index(ep));
            }
            // Local ejection demux agrees with endpoint indexing.
            for r in topo.routers() {
                for k in 0..topo.tiles_per_router() {
                    assert_eq!(
                        tables.local_ep_index(r, Port::tile_slot(k)),
                        topo.endpoint_index(Endpoint::tile_slot(r, k))
                    );
                }
                if topo.has_mc(r) {
                    assert_eq!(
                        tables.local_ep_index(r, Port::Mc),
                        topo.endpoint_index(Endpoint::mc(r))
                    );
                }
            }
        }
    }

    #[test]
    fn route_ctx_is_identical_with_tables_on_or_off() {
        let topo = Topology::from(Torus::square_with_corner_mcs(4));
        let tables = RoutingTables::build(&topo);
        for use_tables in [true, false] {
            let ctx = RouteCtx {
                tables: &tables,
                topo: &topo,
                use_tables,
                datelines: topo.has_datelines(),
            };
            let dest = Endpoint::tile(RouterId(10));
            let r = ctx.route(RouterId(0), &packet_to(dest), None);
            assert_eq!(r.mask.len(), 1);
            // Same answer from the other engine.
            let other = RouteCtx {
                tables: &tables,
                topo: &topo,
                use_tables: !use_tables,
                datelines: topo.has_datelines(),
            }
            .route(RouterId(0), &packet_to(dest), None);
            assert_eq!(r.mask, other.mask);
            assert_eq!(r.classes, other.classes);
        }
    }

    #[test]
    fn vc_class_ranges_partition_the_regular_vcs() {
        assert_eq!(VcClass::Any.regular_range(4), 0..4);
        assert_eq!(VcClass::C0.regular_range(4), 0..2);
        assert_eq!(VcClass::C1.regular_range(4), 2..4);
        assert_eq!(VcClass::C0.regular_range(2), 0..1);
        assert_eq!(VcClass::C1.regular_range(2), 1..2);
    }

    #[test]
    #[should_panic(expected = "needs >= 2 regular VCs")]
    fn single_vc_torus_is_rejected() {
        let mut cfg = NocConfig::scorpio();
        cfg.vnets[1].vcs = 1;
        let topo = Topology::from(Torus::square_with_corner_mcs(4));
        validate_datelines(&topo, &cfg);
    }

    #[test]
    fn mesh_skips_dateline_validation() {
        let mut cfg = NocConfig::scorpio();
        cfg.vnets[1].vcs = 1;
        validate_datelines(&Topology::from(Mesh::new(2, 2, &[])), &cfg);
    }
}
