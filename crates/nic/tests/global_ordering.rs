//! End-to-end tests of the in-network ordering property: every NIC —
//! tiles and memory controllers alike — observes the identical global
//! sequence of coherence requests, regardless of injection timing, mesh
//! position, congestion, or stop-bit interference. With a multi-plane
//! main network the guarantee is per plane (which implies per address):
//! every NIC observes the identical order *within* each plane.

use scorpio_nic::{Nic, NicConfig, NicMode, OrderedDelivery};
use scorpio_noc::{Endpoint, Mesh, MultiNetwork, NocConfig, RouterId, Sid};
use scorpio_notify::{NotifyConfig, NotifyNetwork};
use scorpio_sim::SimRng;
use std::num::NonZeroUsize;

/// A tile/MC world driving NICs against both networks.
struct World {
    net: MultiNetwork<u32>,
    notify: NotifyNetwork,
    nics: Vec<Nic<u32>>,
    logs: Vec<Vec<(usize, u16, u16)>>, // per NIC: (plane, sid, seq) order
}

fn payload(sid: u16, seq: u16) -> u32 {
    ((sid as u32) << 16) | seq as u32
}

fn unpack(p: u32) -> (u16, u16) {
    ((p >> 16) as u16, (p & 0xFFFF) as u16)
}

impl World {
    fn new(mesh: Mesh, nic_cfg: NicConfig) -> World {
        World::with_planes(mesh, nic_cfg, 1)
    }

    fn with_planes(mesh: Mesh, nic_cfg: NicConfig, planes: usize) -> World {
        let cores = mesh.router_count();
        let net: MultiNetwork<u32> = MultiNetwork::new(
            mesh.clone(),
            NocConfig::scorpio(),
            NonZeroUsize::new(planes).unwrap(),
            0,
        );
        let notify = NotifyNetwork::with_planes(&mesh, NotifyConfig::for_mesh(&mesh), planes);
        let mut nics = Vec::new();
        for ep in mesh.endpoints() {
            let sid = match ep.slot {
                scorpio_noc::LocalSlot::Tile(_) => Some(Sid(ep.router.0)),
                scorpio_noc::LocalSlot::Mc => None,
            };
            nics.push(Nic::new(
                ep,
                sid,
                NicMode::Ordered,
                cores,
                planes,
                nic_cfg.clone(),
            ));
        }
        let n = nics.len();
        World {
            net,
            notify,
            nics,
            logs: vec![Vec::new(); n],
        }
    }

    fn step(&mut self) {
        let now = self.net.cycle();
        for (i, nic) in self.nics.iter_mut().enumerate() {
            nic.tick(now, &mut self.net, Some(&mut self.notify));
            while let Some(OrderedDelivery { payload, sid, .. }) = nic.pop_ordered() {
                let (psid, seq) = unpack(payload);
                assert_eq!(psid, sid.0, "payload/sid mismatch");
                let plane = self.net.plane_of(payload as u64);
                self.logs[i].push((plane, psid, seq));
            }
            // Drain unordered deliveries too (none expected in these tests).
            while nic.pop_packet().is_some() {}
        }
        self.net.tick();
        self.net.commit();
        self.notify.tick();
    }

    /// Every NIC delivered all `expected_total` requests, every NIC agrees
    /// with NIC 0 on the order *within each plane*, and per (plane,
    /// source) the sequence numbers ascend (point-to-point ordering). For
    /// a single plane this is exactly the old identical-total-order check.
    fn assert_identical_logs(&self, expected_total: usize) {
        let planes = self.net.plane_count();
        let per_plane = |log: &[(usize, u16, u16)], p: usize| -> Vec<(u16, u16)> {
            log.iter()
                .filter(|&&(pl, _, _)| pl == p)
                .map(|&(_, s, q)| (s, q))
                .collect()
        };
        for (i, log) in self.logs.iter().enumerate() {
            assert_eq!(
                log.len(),
                expected_total,
                "NIC {i} delivered {} of {expected_total} requests",
                log.len()
            );
            for p in 0..planes {
                assert_eq!(
                    per_plane(log, p),
                    per_plane(&self.logs[0], p),
                    "NIC {i} observed a different plane-{p} order than NIC 0"
                );
            }
        }
        // Point-to-point ordering: per (plane, source), injection order is
        // preserved (the issue-order subsequence steered to one plane must
        // stay ascending).
        let mut last = std::collections::HashMap::new();
        for &(plane, sid, seq) in &self.logs[0] {
            let prev = last.insert((plane, sid), seq);
            if let Some(prev) = prev {
                assert!(prev < seq, "source {sid} out of order on plane {plane}");
            }
        }
    }
}

#[test]
fn all_nodes_observe_identical_order_single_burst() {
    let mesh = Mesh::square_with_corner_mcs(4);
    let mut w = World::new(mesh, NicConfig::default());
    // Every tile fires one request in the same cycle.
    let now = w.net.cycle();
    for i in 0..16u16 {
        let ep = Endpoint::tile(RouterId(i));
        let idx = w.net.endpoint_index(ep);
        w.nics[idx]
            .try_send_request(payload(i, 0), now, &mut w.net)
            .unwrap();
    }
    for _ in 0..400 {
        w.step();
    }
    w.assert_identical_logs(16);
}

#[test]
fn staggered_random_injections_stay_ordered() {
    let mesh = Mesh::square_with_corner_mcs(4);
    let mut w = World::new(mesh, NicConfig::default());
    let mut rng = SimRng::seed_from(77);
    let per_tile = 6u16;
    let mut seq = [0u16; 16];
    let mut remaining: usize = 16 * per_tile as usize;
    for _ in 0..6000 {
        if remaining > 0 {
            for i in 0..16u16 {
                if seq[i as usize] < per_tile && rng.chance(0.04) {
                    let ep = Endpoint::tile(RouterId(i));
                    let idx = w.net.endpoint_index(ep);
                    let now = w.net.cycle();
                    let s = seq[i as usize];
                    if w.nics[idx]
                        .try_send_request(payload(i, s), now, &mut w.net)
                        .is_ok()
                    {
                        seq[i as usize] += 1;
                        remaining -= 1;
                    }
                }
            }
        }
        w.step();
        if remaining == 0 && w.logs[0].len() == 16 * per_tile as usize {
            // Give stragglers a grace period.
            for _ in 0..300 {
                w.step();
            }
            break;
        }
    }
    w.assert_identical_logs(16 * per_tile as usize);
}

#[test]
fn stop_bit_pressure_does_not_break_ordering() {
    // A tiny tracker queue forces stop windows under load.
    let mesh = Mesh::square_with_corner_mcs(3);
    let cfg = NicConfig {
        tracker_depth: 2,
        ..NicConfig::default()
    };
    let mut w = World::new(mesh, cfg);
    let per_tile = 8u16;
    let mut seq = [0u16; 9];
    for _ in 0..8000 {
        for i in 0..9u16 {
            if seq[i as usize] < per_tile {
                let ep = Endpoint::tile(RouterId(i));
                let idx = w.net.endpoint_index(ep);
                let now = w.net.cycle();
                let s = seq[i as usize];
                if w.nics[idx]
                    .try_send_request(payload(i, s), now, &mut w.net)
                    .is_ok()
                {
                    seq[i as usize] += 1;
                }
            }
        }
        w.step();
        if w.logs.iter().all(|l| l.len() == 9 * per_tile as usize) {
            break;
        }
    }
    w.assert_identical_logs(9 * per_tile as usize);
    // The pressure must actually have triggered the stop protocol.
    let stops: u64 = w.nics.iter().map(|n| n.stats.stop_windows.get()).sum();
    assert!(stops > 0, "test failed to exercise the stop bit");
}

#[test]
fn saturating_burst_from_one_tile_respects_pending_limit() {
    let mesh = Mesh::new(2, 2, &[]);
    let mut w = World::new(mesh, NicConfig::default());
    let ep = Endpoint::tile(RouterId(0));
    let idx = w.net.endpoint_index(ep);
    // Push as many as the NIC will take in one cycle: limited to 4 by the
    // pending-notification counter.
    let now = w.net.cycle();
    let mut accepted = 0u16;
    for s in 0..10u16 {
        if w.nics[idx]
            .try_send_request(payload(0, s), now, &mut w.net)
            .is_ok()
        {
            accepted += 1;
        }
    }
    assert_eq!(accepted, 4, "pending-notification limit should cap at 4");
    // The rest go in over time.
    let mut s = accepted;
    for _ in 0..2000 {
        if s < 10 {
            let now = w.net.cycle();
            if w.nics[idx]
                .try_send_request(payload(0, s), now, &mut w.net)
                .is_ok()
            {
                s += 1;
            }
        }
        w.step();
        if w.logs.iter().all(|l| l.len() == 10) {
            break;
        }
    }
    w.assert_identical_logs(10);
}

#[test]
fn mc_endpoints_observe_the_same_order_as_tiles() {
    let mesh = Mesh::square_with_corner_mcs(4);
    let mut w = World::new(mesh, NicConfig::default());
    for round in 0..3u16 {
        for i in [0u16, 5, 10, 15] {
            let ep = Endpoint::tile(RouterId(i));
            let idx = w.net.endpoint_index(ep);
            let now = w.net.cycle();
            w.nics[idx]
                .try_send_request(payload(i, round), now, &mut w.net)
                .unwrap();
        }
        for _ in 0..40 {
            w.step();
        }
    }
    for _ in 0..200 {
        w.step();
    }
    w.assert_identical_logs(12);
    // Indices 16..20 are the MC NICs; spot-check one explicitly.
    let mc_idx = w.net.endpoint_index(Endpoint::mc(RouterId(0)));
    assert_eq!(w.logs[mc_idx], w.logs[0]);
}

#[test]
fn non_pipelined_nic_still_orders_correctly() {
    let mesh = Mesh::square_with_corner_mcs(3);
    let cfg = NicConfig {
        pipelined: false,
        latency: 3,
        ..NicConfig::default()
    };
    let mut w = World::new(mesh, cfg);
    let now = w.net.cycle();
    for i in 0..9u16 {
        let ep = Endpoint::tile(RouterId(i));
        let idx = w.net.endpoint_index(ep);
        w.nics[idx]
            .try_send_request(payload(i, 0), now, &mut w.net)
            .unwrap();
    }
    for _ in 0..1500 {
        w.step();
    }
    w.assert_identical_logs(9);
}

#[test]
fn two_planes_keep_per_plane_global_order_under_random_load() {
    let mesh = Mesh::square_with_corner_mcs(4);
    let mut w = World::with_planes(mesh, NicConfig::default(), 2);
    let mut rng = SimRng::seed_from(4242);
    let per_tile = 6u16;
    let mut seq = [0u16; 16];
    let mut remaining: usize = 16 * per_tile as usize;
    for _ in 0..8000 {
        if remaining > 0 {
            for i in 0..16u16 {
                if seq[i as usize] < per_tile && rng.chance(0.04) {
                    let ep = Endpoint::tile(RouterId(i));
                    let idx = w.net.endpoint_index(ep);
                    let now = w.net.cycle();
                    let s = seq[i as usize];
                    if w.nics[idx]
                        .try_send_request(payload(i, s), now, &mut w.net)
                        .is_ok()
                    {
                        seq[i as usize] += 1;
                        remaining -= 1;
                    }
                }
            }
        }
        w.step();
        if remaining == 0 && w.logs.iter().all(|l| l.len() == 16 * per_tile as usize) {
            break;
        }
    }
    w.assert_identical_logs(16 * per_tile as usize);
    // Both planes really carried traffic (payload parity splits them).
    let plane0 = w.logs[0].iter().filter(|&&(p, _, _)| p == 0).count();
    assert!(plane0 > 0 && plane0 < w.logs[0].len(), "one plane sat idle");
}

#[test]
fn four_planes_multiply_the_pending_notification_budget() {
    let mut w = World::with_planes(Mesh::new(2, 2, &[]), NicConfig::default(), 4);
    let ep = Endpoint::tile(RouterId(0));
    let idx = w.net.endpoint_index(ep);
    // Ten requests whose addresses stripe over four planes: per-plane
    // pending counts stay below 4, so — unlike the single-plane NIC,
    // which caps at 4 — all ten inject in one cycle.
    let now = w.net.cycle();
    let mut accepted = 0u16;
    for s in 0..10u16 {
        if w.nics[idx]
            .try_send_request(payload(0, s), now, &mut w.net)
            .is_ok()
        {
            accepted += 1;
        }
    }
    assert_eq!(
        accepted, 10,
        "per-plane notification budgets should all have headroom"
    );
    for _ in 0..2000 {
        w.step();
        if w.logs.iter().all(|l| l.len() == 10) {
            break;
        }
    }
    w.assert_identical_logs(10);
}
