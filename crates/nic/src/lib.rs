//! The SCORPIO network interface controller (Section 3.4).
//!
//! A [`Nic`] connects a cache controller (or memory controller) to the main
//! network (`scorpio-noc`, a [`scorpio_noc::MultiNetwork`] of one or more
//! address-interleaved planes) and the notification network
//! (`scorpio-notify`). One [`NotificationTracker`] per plane expands each
//! completed time window into that plane's globally consistent
//! Expected-SID stream; ordered requests — including the NIC's own, via
//! per-plane loopback queues — are released to the controller strictly in
//! their plane's order, while responses flow through unordered.
//!
//! # Examples
//!
//! Two tiles on a 2×2 mesh observing a request in the same global slot:
//!
//! ```
//! use scorpio_nic::{Nic, NicConfig, NicMode};
//! use scorpio_noc::{Endpoint, Mesh, MultiNetwork, NocConfig, RouterId, Sid};
//! use scorpio_notify::{NotifyConfig, NotifyNetwork};
//! use std::num::NonZeroUsize;
//!
//! let mesh = Mesh::new(2, 2, &[]);
//! let one = NonZeroUsize::new(1).unwrap();
//! let mut net: MultiNetwork<u32> =
//!     MultiNetwork::new(mesh.clone(), NocConfig::scorpio(), one, 0);
//! let mut notify = NotifyNetwork::new(&mesh, NotifyConfig::for_mesh(&mesh));
//! let mut nics: Vec<Nic<u32>> = (0..4)
//!     .map(|i| {
//!         let ep = Endpoint::tile(RouterId(i));
//!         Nic::new(ep, Some(Sid(i)), NicMode::Ordered, 4, 1, NicConfig::default())
//!     })
//!     .collect();
//!
//! // Tile 3 issues one coherence request.
//! let now = net.cycle();
//! nics[3].try_send_request(0xAB, now, &mut net).unwrap();
//!
//! for _ in 0..60 {
//!     let now = net.cycle();
//!     for nic in &mut nics {
//!         nic.tick(now, &mut net, Some(&mut notify));
//!     }
//!     net.step();
//!     notify.tick();
//! }
//! // Every tile (including tile 3, via loopback) delivered it.
//! for nic in &mut nics {
//!     let d = nic.pop_ordered().expect("request delivered");
//!     assert_eq!(d.sid, Sid(3));
//!     assert_eq!(d.payload, 0xAB);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod nic;
mod tracker;

pub use nic::{Nic, NicConfig, NicMode, NicStats, OrderedDelivery, SendError};
pub use tracker::NotificationTracker;
