//! The notification tracker: turns merged notification messages into the
//! globally consistent ESID stream.

use scorpio_noc::{RotatingArbiter, Sid};
use scorpio_notify::NotifyMsg;
use scorpio_sim::Fifo;
use std::collections::VecDeque;

/// Expands completed notification windows into the Expected-SID sequence.
///
/// Every NIC runs one tracker seeded identically; because each consumes the
/// identical window stream and rotates its priority arbiter once per
/// processed window, all nodes derive the *same* total order over requests
/// — the heart of SCORPIO's distributed ordering (Section 3.4).
///
/// # Examples
///
/// ```
/// use scorpio_nic::NotificationTracker;
/// use scorpio_notify::NotifyMsg;
/// use scorpio_noc::Sid;
///
/// let mut t = NotificationTracker::new(4, 8);
/// let mut w = NotifyMsg::new(4, 2);
/// w.set_count(2, 1);
/// w.set_count(0, 2);
/// t.push_window(w);
/// // Priority starts at core 0: order is 0, 0, 2.
/// assert_eq!(t.current_esid(), Some(Sid(0)));
/// t.advance();
/// assert_eq!(t.current_esid(), Some(Sid(0)));
/// t.advance();
/// assert_eq!(t.current_esid(), Some(Sid(2)));
/// t.advance();
/// assert_eq!(t.current_esid(), None);
/// ```
#[derive(Debug, Clone)]
pub struct NotificationTracker {
    queue: Fifo<NotifyMsg>,
    arbiter: RotatingArbiter,
    current: VecDeque<Sid>,
    /// Queue occupancy at which the stop bit is asserted, leaving headroom
    /// for the one window already in flight.
    stop_threshold: usize,
    /// Which plane's announcement word group this tracker expands. With a
    /// multi-plane main network each NIC runs one tracker per plane; every
    /// tracker consumes the identical window stream but reads only its own
    /// plane's lanes, so each plane derives an independent — and still
    /// globally agreed — per-plane total order.
    plane: usize,
    reqs_scratch: Vec<bool>,
}

impl NotificationTracker {
    /// A tracker for `cores` cores with a `depth`-entry window queue,
    /// expanding plane 0's announcement words (the single-plane network).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or `depth < 2` (one in-flight window of
    /// headroom is required for the stop-bit protocol to be lossless).
    pub fn new(cores: usize, depth: usize) -> Self {
        NotificationTracker::for_plane(cores, depth, 0)
    }

    /// A tracker expanding plane `plane`'s word group of every pushed
    /// window (see [`NotificationTracker::new`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NotificationTracker::new`].
    pub fn for_plane(cores: usize, depth: usize, plane: usize) -> Self {
        assert!(cores > 0, "tracker needs at least one core");
        assert!(depth >= 2, "tracker depth must be at least 2");
        NotificationTracker {
            queue: Fifo::bounded(depth),
            arbiter: RotatingArbiter::new(cores),
            current: VecDeque::new(),
            stop_threshold: depth - 1,
            plane,
            reqs_scratch: vec![false; cores],
        }
    }

    /// The plane whose announcement words this tracker expands.
    pub fn plane(&self) -> usize {
        self.plane
    }

    /// Whether the NIC should assert the stop bit in its next notification
    /// (the tracker is close enough to full that another window might not
    /// fit).
    pub fn should_stop(&self) -> bool {
        self.queue.len() >= self.stop_threshold
    }

    /// Accepts a completed window whose word group for this tracker's
    /// plane is non-stop and non-empty (other planes' lanes are ignored).
    ///
    /// # Panics
    ///
    /// Panics if the queue overflows — the stop-bit protocol guarantees
    /// this cannot happen, so an overflow is a protocol bug.
    pub fn push_window(&mut self, msg: NotifyMsg) {
        debug_assert!(
            msg.total_in(self.plane) > 0,
            "windows empty for this plane must be filtered out"
        );
        self.queue
            .push(msg)
            .unwrap_or_else(|_| panic!("tracker queue overflow despite stop protocol"));
        if self.current.is_empty() {
            self.expand_next();
        }
    }

    /// The SID the NIC is currently waiting for, if any.
    pub fn current_esid(&self) -> Option<Sid> {
        self.current.front().copied()
    }

    /// Marks the current expected request as delivered and moves on.
    ///
    /// # Panics
    ///
    /// Panics if there is no current expectation.
    pub fn advance(&mut self) {
        self.current
            .pop_front()
            .expect("advance without a current expectation");
        if self.current.is_empty() {
            self.expand_next();
        }
    }

    /// Number of requests still to be delivered from the window currently
    /// being serviced.
    pub fn current_window_remaining(&self) -> usize {
        self.current.len()
    }

    /// Windows queued behind the current one.
    pub fn queued_windows(&self) -> usize {
        self.queue.len()
    }

    /// Total expected requests known to the tracker (current + queued).
    pub fn backlog(&self) -> usize {
        self.current.len()
            + self
                .queue
                .iter()
                .map(|m| m.total_in(self.plane) as usize)
                .sum::<usize>()
    }

    fn expand_next(&mut self) {
        let Some(msg) = self.queue.pop() else {
            return;
        };
        debug_assert!(
            msg.total_in(self.plane) > 0,
            "windows empty for this plane must be filtered out"
        );
        for r in self.reqs_scratch.iter_mut() {
            *r = false;
        }
        for (core, _) in msg.nonzero_in(self.plane) {
            self.reqs_scratch[core] = true;
        }
        for core in self.arbiter.order(&self.reqs_scratch).collect::<Vec<_>>() {
            for _ in 0..msg.count_in(self.plane, core) {
                self.current.push_back(Sid(core as u16));
            }
        }
        // Fairness: rotate once per processed window (Section 3.1 step 3).
        self.arbiter.rotate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(pairs: &[(usize, u8)]) -> NotifyMsg {
        let mut m = NotifyMsg::new(8, 2);
        for &(c, n) in pairs {
            m.set_count(c, n);
        }
        m
    }

    fn drain(t: &mut NotificationTracker) -> Vec<u16> {
        let mut order = Vec::new();
        while let Some(sid) = t.current_esid() {
            order.push(sid.0);
            t.advance();
        }
        order
    }

    #[test]
    fn expands_in_rotating_priority_order() {
        let mut t = NotificationTracker::new(8, 4);
        t.push_window(window(&[(1, 1), (5, 1), (3, 1)]));
        assert_eq!(drain(&mut t), vec![1, 3, 5]);
    }

    #[test]
    fn priority_rotates_between_windows() {
        let mut t = NotificationTracker::new(4, 4);
        t.push_window(window(&[(0, 1), (1, 1)]));
        assert_eq!(drain(&mut t), vec![0, 1]);
        // Pointer rotated to 1: order now starts from 1.
        t.push_window(window(&[(0, 1), (1, 1)]));
        assert_eq!(drain(&mut t), vec![1, 0]);
    }

    #[test]
    fn multi_count_expands_consecutively() {
        let mut t = NotificationTracker::new(8, 4);
        t.push_window(window(&[(2, 3), (6, 1)]));
        assert_eq!(drain(&mut t), vec![2, 2, 2, 6]);
    }

    #[test]
    fn two_trackers_stay_in_lockstep() {
        let mut a = NotificationTracker::new(8, 4);
        let mut b = NotificationTracker::new(8, 4);
        let windows = [
            window(&[(7, 2)]),
            window(&[(0, 1), (4, 1)]),
            window(&[(1, 1), (2, 1), (3, 1)]),
        ];
        // a services windows as they come; b queues them all first.
        let mut order_a = Vec::new();
        for w in &windows {
            a.push_window(w.clone());
            order_a.extend(drain(&mut a));
        }
        for w in &windows {
            b.push_window(w.clone());
        }
        let order_b = drain(&mut b);
        assert_eq!(order_a, order_b, "global order diverged between nodes");
    }

    #[test]
    fn stop_threshold_leaves_headroom() {
        let mut t = NotificationTracker::new(4, 3);
        assert!(!t.should_stop());
        // One window goes straight to `current`, so queue stays empty.
        t.push_window(window(&[(0, 1)]));
        assert!(!t.should_stop());
        t.push_window(window(&[(1, 1)]));
        t.push_window(window(&[(2, 1)]));
        assert!(t.should_stop());
        // Even at the stop threshold one more window fits (the in-flight
        // one).
        t.push_window(window(&[(3, 1)]));
        assert_eq!(t.backlog(), 4);
    }

    #[test]
    fn backlog_counts_current_and_queued() {
        let mut t = NotificationTracker::new(4, 4);
        t.push_window(window(&[(0, 2)]));
        t.push_window(window(&[(1, 3)]));
        assert_eq!(t.current_window_remaining(), 2);
        assert_eq!(t.queued_windows(), 1);
        assert_eq!(t.backlog(), 5);
    }

    #[test]
    #[should_panic(expected = "advance without")]
    fn advance_on_empty_panics() {
        let mut t = NotificationTracker::new(2, 2);
        t.advance();
    }

    #[test]
    #[should_panic(expected = "depth must be at least 2")]
    fn tiny_depth_panics() {
        let _ = NotificationTracker::new(2, 1);
    }
}
