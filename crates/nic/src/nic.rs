//! The network interface controller (Figure 4).
//!
//! The NIC sits between a cache controller (or memory controller) and the
//! two networks. On the send path it packetises coherence messages, steers
//! each ordered request onto its address's main-network plane, counts
//! pending notifications per plane (blocking new ordered requests past the
//! limit, Table 1: max 4) and announces them at time-window boundaries. On
//! the receive path it consumes unordered responses freely, but releases
//! ordered requests to the controller only in the per-plane global order
//! determined by the notification trackers — including the NIC's *own*
//! requests, which self-deliver through per-plane loopback queues rather
//! than traversing the mesh. Because the steering function assigns every
//! address to exactly one plane, the per-plane orders compose into a
//! per-address total order, which is all snoopy coherence requires.

use crate::tracker::NotificationTracker;
use scorpio_noc::{Endpoint, MultiNetwork, Packet, Payload, Sid, SteerKey, VnetId};
use scorpio_notify::NotifyNetwork;
use scorpio_sim::stats::{Accumulator, Counter};
use scorpio_sim::{Cycle, Fifo};
use std::collections::HashMap;

/// NIC configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NicConfig {
    /// Maximum notifications awaiting announcement (per plane) before the
    /// NIC blocks new ordered requests onto that plane (Table 1: 4).
    pub max_pending_notifications: u8,
    /// Notification tracker queue depth (windows).
    pub tracker_depth: usize,
    /// Pipelined receive path (Figure 10's "PL" configuration). When
    /// false, each consumed flit occupies the NIC for [`NicConfig::latency`]
    /// cycles.
    pub pipelined: bool,
    /// Processing occupancy per consumed flit when not pipelined.
    pub latency: u64,
    /// Depth of the ordered-delivery queue toward the cache controller.
    pub ordered_queue_depth: usize,
    /// Depth of the unordered packet-delivery queue.
    pub packet_queue_depth: usize,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            max_pending_notifications: 4,
            tracker_depth: 8,
            pipelined: true,
            latency: 2,
            ordered_queue_depth: 4,
            packet_queue_depth: 8,
        }
    }
}

/// Whether this NIC enforces SCORPIO global ordering or passes every packet
/// through unordered (the baseline protocols).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicMode {
    /// SCORPIO: GO-REQ deliveries gated by the per-plane ESID streams.
    Ordered,
    /// Baselines: every packet delivered as it arrives.
    Unordered,
}

/// An ordered coherence request released to the cache controller.
#[derive(Debug, Clone, Copy)]
pub struct OrderedDelivery<T> {
    /// The global-order source of the request.
    pub sid: Sid,
    /// The coherence message.
    pub payload: T,
    /// True when this is the NIC's own request (loopback self-delivery).
    pub own: bool,
    /// Cycle the request entered its source NIC.
    pub inject_cycle: Cycle,
    /// Cycle this NIC could first have seen it (arrival at the ejection
    /// buffers; equals delivery cycle for loopback).
    pub first_seen: Cycle,
}

/// Error returned when the NIC cannot accept an ordered request this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The pending-notification counter is at its limit.
    NotificationLimit,
    /// The injection queue into the main network is full.
    NetworkFull,
    /// This NIC cannot send ordered requests (no SID / unordered mode).
    NotACore,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SendError::NotificationLimit => "pending notification limit reached",
            SendError::NetworkFull => "network injection queue full",
            SendError::NotACore => "this NIC cannot send ordered requests",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SendError {}

/// NIC statistics.
#[derive(Debug, Clone, Default)]
pub struct NicStats {
    /// Ordered requests injected.
    pub requests_sent: Counter,
    /// Unordered packets injected.
    pub responses_sent: Counter,
    /// Ordered requests delivered to the controller.
    pub ordered_delivered: Counter,
    /// Unordered packets delivered to the controller.
    pub packets_delivered: Counter,
    /// Cycles an ordered request waited at this NIC for its turn.
    pub ordering_wait: Accumulator,
    /// End-to-end latency of delivered ordered requests (inject → deliver).
    pub ordered_latency: Accumulator,
    /// Plane word groups ignored because someone asserted stop.
    pub stop_windows: Counter,
    /// Announcements that had to be re-sent after a stop window.
    pub notif_resends: Counter,
}

/// The network interface controller for one endpoint.
///
/// Every per-plane structure below is a `Vec` indexed by plane; with one
/// plane (the chip configuration) each collapses to the single-network
/// NIC, byte-for-byte.
pub struct Nic<T> {
    ep: Endpoint,
    sid: Option<Sid>,
    mode: NicMode,
    cfg: NicConfig,
    planes: usize,
    /// One tracker per plane, each expanding its own plane's word group.
    tracker: Vec<NotificationTracker>,
    /// Requests injected but not yet announced, per plane.
    unsent: Vec<u8>,
    /// Requests announced in the window currently in flight, per plane.
    announced: Vec<u8>,
    last_window: Option<u64>,
    /// Loopback self-delivery queues, per plane.
    own_queue: Vec<Fifo<(T, Cycle, u64)>>,
    ordered_out: Fifo<OrderedDelivery<T>>,
    packet_out: Fifo<Packet<T>>,
    /// Reassembly progress per (plane, vnet, vc): flits received of the
    /// current packet.
    partial: HashMap<(u8, u8, u8), u8>,
    /// Per-plane, per-source count of ordered requests this NIC has
    /// delivered; the expected instance on plane `p` is always
    /// (ESID, delivered[p][ESID]).
    delivered_seq: Vec<Vec<u16>>,
    /// Per-plane count of own requests sent (assigns sid_seq).
    sent_seq: Vec<u16>,
    published_esid: Vec<Option<(Sid, u16)>>,
    published_any: Vec<bool>,
    busy_until: Cycle,
    /// Per-plane first-seen cycles, keyed by that plane's packet uid.
    first_seen: Vec<HashMap<u64, Cycle>>,
    /// Public statistics.
    pub stats: NicStats,
}

impl<T: Payload + SteerKey> Nic<T> {
    /// Creates a NIC for endpoint `ep` attached to a `planes`-plane main
    /// network.
    ///
    /// `sid` is `Some` for tile NICs that issue ordered requests and `None`
    /// for memory-controller NICs (which observe the order but never
    /// inject into it). `cores` sizes the notification trackers.
    ///
    /// # Panics
    ///
    /// Panics if `planes` is zero.
    pub fn new(
        ep: Endpoint,
        sid: Option<Sid>,
        mode: NicMode,
        cores: usize,
        planes: usize,
        cfg: NicConfig,
    ) -> Self {
        assert!(planes > 0, "a NIC needs at least one plane");
        Nic {
            ep,
            sid,
            mode,
            planes,
            tracker: (0..planes)
                .map(|p| NotificationTracker::for_plane(cores, cfg.tracker_depth, p))
                .collect(),
            unsent: vec![0; planes],
            announced: vec![0; planes],
            last_window: None,
            own_queue: (0..planes).map(|_| Fifo::bounded(64)).collect(),
            delivered_seq: vec![vec![0; cores]; planes],
            sent_seq: vec![0; planes],
            ordered_out: Fifo::bounded(cfg.ordered_queue_depth),
            packet_out: Fifo::bounded(cfg.packet_queue_depth),
            partial: HashMap::new(),
            published_esid: vec![None; planes],
            published_any: vec![false; planes],
            busy_until: Cycle::ZERO,
            first_seen: (0..planes).map(|_| HashMap::new()).collect(),
            cfg,
            stats: NicStats::default(),
        }
    }

    /// The endpoint this NIC serves.
    pub fn endpoint(&self) -> Endpoint {
        self.ep
    }

    /// This NIC's source id, if it is a request-issuing tile.
    pub fn sid(&self) -> Option<Sid> {
        self.sid
    }

    /// Number of main-network planes this NIC serves.
    pub fn planes(&self) -> usize {
        self.planes
    }

    /// The SID currently expected in plane 0's global order (the
    /// single-plane network's "the" expected SID).
    pub fn current_esid(&self) -> Option<Sid> {
        self.tracker[0].current_esid()
    }

    /// The SID currently expected in plane `p`'s global order.
    pub fn current_esid_plane(&self, p: usize) -> Option<Sid> {
        self.tracker[p].current_esid()
    }

    /// Ordered requests (current + queued windows, all planes) still to be
    /// delivered.
    pub fn ordering_backlog(&self) -> usize {
        self.tracker.iter().map(NotificationTracker::backlog).sum()
    }

    /// Internal counters for diagnostics: summed (unsent, announced) over
    /// planes, and the last window processed.
    #[doc(hidden)]
    pub fn debug_counters(&self) -> (u32, u32, Option<u64>) {
        (
            self.unsent.iter().map(|&u| u as u32).sum(),
            self.announced.iter().map(|&a| a as u32).sum(),
            self.last_window,
        )
    }

    /// Whether ticking this NIC is a no-op until something external
    /// happens: nothing awaiting announcement or re-announcement on any
    /// plane, no loopback self-delivery pending, empty delivery queues
    /// toward the controller, and no stop bit that must be asserted at the
    /// next window start. A NIC that merely *expects* ordered requests
    /// (tracker backlog > 0) may still sleep: its published ESIDs are
    /// already current, and the expected flit's arrival at the endpoint —
    /// or the next non-empty/stop notification window — is exactly what
    /// wakes the tile. Empty windows observed late are harmless: they
    /// carry nothing and announcing is only required when `unsent > 0` or
    /// a stop bit is due, both of which keep the NIC awake.
    pub fn can_sleep(&self) -> bool {
        self.announced.iter().all(|&a| a == 0) && self.can_sleep_leap()
    }

    /// The relaxed sleep predicate used under the event-leaping clock: like
    /// [`Nic::can_sleep`], except a NIC whose only remaining obligation is
    /// an *outstanding announcement* (`announced > 0`, waiting for its
    /// window to publish) may also sleep. This is safe because the window
    /// carrying the announcement is non-empty by construction, and a
    /// non-empty window's publication wakes every endpoint — so
    /// `process_completed_window` runs at exactly the cycle it would have
    /// run had the NIC stayed awake, and no tick in between would have done
    /// anything (`unsent` is zero, so mid-window announce calls are
    /// no-ops). Kept separate from `can_sleep` so the plain active-set
    /// engine's sleep decisions stay exactly as before.
    pub fn can_sleep_leap(&self) -> bool {
        self.unsent.iter().all(|&u| u == 0)
            && self.own_queue.iter().all(Fifo::is_empty)
            && self.ordered_out.is_empty()
            && self.packet_out.is_empty()
            && !self.tracker.iter().any(NotificationTracker::should_stop)
    }

    /// Whether an ordered request for the line keyed `key` would currently
    /// be accepted (its plane's pending-notification budget has room).
    pub fn can_send_request(&self, net: &MultiNetwork<T>, key: u64) -> bool {
        let plane = net.plane_of(key);
        self.sid.is_some()
            && self.mode == NicMode::Ordered
            && self.unsent[plane] + self.announced[plane] < self.cfg.max_pending_notifications
            && !self.own_queue[plane].is_full()
    }

    /// Injects an ordered coherence request (broadcast + later
    /// notification) onto the plane its payload's [`SteerKey`] selects.
    ///
    /// # Errors
    ///
    /// [`SendError::NotACore`] if this NIC has no SID or is unordered;
    /// [`SendError::NotificationLimit`] when the plane's pending counter is
    /// at its limit; [`SendError::NetworkFull`] when the plane's injection
    /// queue is full.
    pub fn try_send_request(
        &mut self,
        payload: T,
        now: Cycle,
        net: &mut MultiNetwork<T>,
    ) -> Result<(), SendError> {
        let sid = match (self.mode, self.sid) {
            (NicMode::Ordered, Some(sid)) => sid,
            _ => return Err(SendError::NotACore),
        };
        let plane = net.plane_of(payload.steer_key());
        if self.unsent[plane] + self.announced[plane] >= self.cfg.max_pending_notifications
            || self.own_queue[plane].is_full()
        {
            return Err(SendError::NotificationLimit);
        }
        let seq = self.sent_seq[plane];
        let (steered, uid) = net
            .try_inject(self.ep, Packet::request(self.ep, sid, seq, payload))
            .map_err(|_| SendError::NetworkFull)?;
        debug_assert_eq!(steered, plane, "steering function disagreed with itself");
        self.sent_seq[plane] = self.sent_seq[plane].wrapping_add(1);
        self.own_queue[plane]
            .push((payload, now, uid))
            .expect("own queue capacity checked above");
        self.unsent[plane] += 1;
        self.stats.requests_sent.incr();
        Ok(())
    }

    /// Injects a unicast packet (response, directory request/forward, ...)
    /// on the plane its payload's address selects.
    ///
    /// # Errors
    ///
    /// [`SendError::NetworkFull`] when the per-vnet injection queue is full.
    pub fn try_send_unicast(
        &mut self,
        vnet: VnetId,
        dest: Endpoint,
        len_flits: u8,
        payload: T,
        net: &mut MultiNetwork<T>,
    ) -> Result<(), SendError> {
        net.try_inject(
            self.ep,
            Packet::unicast(vnet, self.ep, dest, len_flits, payload),
        )
        .map_err(|_| SendError::NetworkFull)?;
        self.stats.responses_sent.incr();
        Ok(())
    }

    /// Injects an unordered broadcast (TokenB / INSO baselines) on the
    /// plane its payload's address selects.
    ///
    /// # Errors
    ///
    /// [`SendError::NetworkFull`] when the injection queue is full.
    pub fn try_send_broadcast(
        &mut self,
        vnet: VnetId,
        payload: T,
        net: &mut MultiNetwork<T>,
    ) -> Result<(), SendError> {
        net.try_inject(self.ep, Packet::broadcast_unordered(vnet, self.ep, payload))
            .map_err(|_| SendError::NetworkFull)?;
        self.stats.responses_sent.incr();
        Ok(())
    }

    /// Takes the next globally ordered request, if one is ready.
    pub fn pop_ordered(&mut self) -> Option<OrderedDelivery<T>> {
        self.ordered_out.pop()
    }

    /// Peeks the next ordered request without consuming it.
    pub fn peek_ordered(&self) -> Option<&OrderedDelivery<T>> {
        self.ordered_out.front()
    }

    /// Takes the next fully reassembled unordered packet, if any.
    pub fn pop_packet(&mut self) -> Option<Packet<T>> {
        self.packet_out.pop()
    }

    /// One cycle. Call before the networks tick, every cycle, passing the
    /// notification network only for ordered-mode NICs.
    pub fn tick(
        &mut self,
        now: Cycle,
        net: &mut MultiNetwork<T>,
        notify: Option<&mut NotifyNetwork>,
    ) {
        if self.mode == NicMode::Ordered {
            if let Some(notify) = notify {
                self.process_completed_window(notify);
                self.announce(now, notify);
            }
        }
        self.receive(now, net);
        self.publish_esid(net);
    }

    /// Handles the merged message of a window that just completed: each
    /// plane's word group is processed independently, so one plane's stop
    /// bit never stalls the others.
    fn process_completed_window(&mut self, notify: &NotifyNetwork) {
        let Some((w, msg)) = notify.latest() else {
            return;
        };
        if self.last_window == Some(w) {
            return;
        }
        self.last_window = Some(w);
        for p in 0..self.planes {
            if msg.stop_in(p) {
                // Everyone ignores this plane's word group; our
                // announcement (if any) must be re-sent.
                self.stats.stop_windows.incr();
                if self.announced[p] > 0 {
                    self.stats.notif_resends.incr();
                    self.unsent[p] += self.announced[p];
                }
                self.announced[p] = 0;
                continue;
            }
            self.announced[p] = 0;
            if msg.total_in(p) > 0 {
                self.tracker[p].push_window(msg.clone());
            }
        }
    }

    /// At window starts, announce pending requests per plane (and the stop
    /// bit when a plane's tracker is near-full).
    fn announce(&mut self, now: Cycle, notify: &mut NotifyNetwork) {
        if !notify.is_window_start(now) {
            return;
        }
        let Some(sid) = self.sid else {
            // MC NICs observe but never announce.
            return;
        };
        let max = (1u16 << notify.config().bits_per_core) as u8 - 1;
        for p in 0..self.planes {
            let stop = self.tracker[p].should_stop();
            let count = self.unsent[p].min(max);
            if count > 0 || stop {
                notify.stage_injection_in(p, sid.index(), count, stop);
                self.unsent[p] -= count;
                self.announced[p] = count;
            }
        }
    }

    /// Receive path: per plane, one ordered consume plus one unordered
    /// flit per cycle — each plane has its own ejection port, so receive
    /// bandwidth scales with the plane count exactly as the replicated
    /// hardware's would.
    fn receive(&mut self, now: Cycle, net: &mut MultiNetwork<T>) {
        if !self.cfg.pipelined && now < self.busy_until {
            return;
        }
        let mut consumed = false;
        match self.mode {
            NicMode::Ordered => {
                // One ordered consume + one unordered flit per plane per
                // cycle (separate ACE channels toward the L2).
                for p in 0..self.planes {
                    consumed |= self.receive_ordered(p, now, net);
                }
                for p in 0..self.planes {
                    consumed |= self.receive_any_class(p, net, false);
                }
            }
            NicMode::Unordered => {
                // Same aggregate bandwidth: two flits from any class per
                // plane.
                for p in 0..self.planes {
                    consumed |= self.receive_any_class(p, net, true);
                    consumed |= self.receive_any_class(p, net, true);
                }
            }
        }
        if consumed && !self.cfg.pipelined {
            self.busy_until = now + self.cfg.latency;
        }
    }

    /// Consumes plane `plane`'s expected ordered request if present
    /// (network or loopback). Returns whether something was consumed.
    fn receive_ordered(&mut self, plane: usize, now: Cycle, net: &mut MultiNetwork<T>) -> bool {
        let Some(esid) = self.tracker[plane].current_esid() else {
            return false;
        };
        if self.ordered_out.is_full() {
            return false;
        }
        if Some(esid) == self.sid {
            // Own request: self-delivery through the loopback path — but
            // only once the broadcast copy has left the injection queue.
            // Consuming earlier would advance our ESID past our own SID
            // while the flit is not yet in the network, breaking the
            // reserved-VC deadlock-freedom invariant.
            let &(_, _, uid) = self.own_queue[plane]
                .front()
                .expect("own request announced but missing from loopback queue");
            if net.inject_pending(plane, self.ep, uid) {
                return false;
            }
            let (payload, inject_cycle, _) = self.own_queue[plane].pop().expect("checked above");
            self.delivered_seq[plane][esid.index()] =
                self.delivered_seq[plane][esid.index()].wrapping_add(1);
            self.deliver_ordered(OrderedDelivery {
                sid: esid,
                payload,
                own: true,
                inject_cycle,
                first_seen: now,
            });
            self.tracker[plane].advance();
            return true;
        }
        // Find the expected request among the plane's ordered-class
        // ejection VCs.
        let mut hit = None;
        for (slot, flit) in net.eject_heads_plane(plane, self.ep) {
            if !net.config().vnets[slot.vnet.index()].ordered {
                continue;
            }
            let uid = flit.packet.uid;
            self.first_seen[plane].entry(uid).or_insert(now);
            if flit.packet.sid == Some(esid) && hit.is_none() {
                hit = Some(slot);
            }
        }
        let Some(slot) = hit else {
            return false;
        };
        let flit = net
            .eject_take_plane(plane, self.ep, slot)
            .expect("head flit vanished");
        debug_assert_eq!(
            flit.packet.sid_seq,
            self.delivered_seq[plane][esid.index()],
            "point-to-point ordering violated: wrong request instance"
        );
        self.delivered_seq[plane][esid.index()] =
            self.delivered_seq[plane][esid.index()].wrapping_add(1);
        let first_seen = self.first_seen[plane]
            .remove(&flit.packet.uid)
            .unwrap_or(now);
        self.stats.ordering_wait.record(now - first_seen);
        self.deliver_ordered(OrderedDelivery {
            sid: esid,
            payload: flit.packet.payload,
            own: false,
            inject_cycle: flit.packet.inject_cycle,
            first_seen,
        });
        self.tracker[plane].advance();
        true
    }

    fn deliver_ordered(&mut self, d: OrderedDelivery<T>) {
        let lat = d.first_seen.max(d.inject_cycle) - d.inject_cycle;
        self.stats.ordered_latency.record(lat);
        self.stats.ordered_delivered.incr();
        self.ordered_out
            .push(d)
            .expect("ordered_out fullness checked by caller");
    }

    /// Consumes one flit from plane `plane` into the packet queue. Ordered
    /// vnets are included only when `include_ordered` is set (baseline
    /// mode, where no global ordering applies).
    fn receive_any_class(
        &mut self,
        plane: usize,
        net: &mut MultiNetwork<T>,
        include_ordered: bool,
    ) -> bool {
        if self.packet_out.is_full() {
            return false;
        }
        let mut pick = None;
        for (slot, _flit) in net.eject_heads_plane(plane, self.ep) {
            let is_ordered = net.config().vnets[slot.vnet.index()].ordered;
            if is_ordered && !include_ordered {
                continue;
            }
            pick = Some(slot);
            break;
        }
        let Some(slot) = pick else {
            return false;
        };
        let flit = net
            .eject_take_plane(plane, self.ep, slot)
            .expect("head flit vanished");
        let key = (plane as u8, slot.vnet.0, slot.vc);
        let got = self.partial.entry(key).or_insert(0);
        debug_assert_eq!(*got, flit.idx, "flit reassembly out of order");
        *got += 1;
        if flit.is_tail() {
            self.partial.remove(&key);
            self.stats.packets_delivered.incr();
            self.packet_out
                .push(flit.packet)
                .expect("packet_out fullness checked above");
        }
        true
    }

    /// Publishes each plane's expected request instance (SID + per-source
    /// sequence number) to that plane for rVC policing.
    fn publish_esid(&mut self, net: &mut MultiNetwork<T>) {
        for p in 0..self.planes {
            let esid = match self.mode {
                NicMode::Ordered => self.tracker[p]
                    .current_esid()
                    .map(|sid| (sid, self.delivered_seq[p][sid.index()])),
                NicMode::Unordered => None,
            };
            if !self.published_any[p] || esid != self.published_esid[p] {
                net.set_esid(p, self.ep, esid);
                self.published_esid[p] = esid;
                self.published_any[p] = true;
            }
        }
    }
}

impl<T: Payload> std::fmt::Debug for Nic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Nic")
            .field("ep", &self.ep)
            .field("sid", &self.sid)
            .field("mode", &self.mode)
            .field("planes", &self.planes)
            .field("esid", &self.tracker[0].current_esid())
            .field("unsent", &self.unsent)
            .finish()
    }
}
