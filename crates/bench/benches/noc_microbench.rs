//! Criterion microbenchmarks of the main network: broadcast and unicast
//! delivery under the chip configuration (simulator throughput, plus
//! zero-load latency sanity).

use criterion::{criterion_group, criterion_main, Criterion};
use scorpio_noc::{Endpoint, Mesh, Network, NocConfig, Packet, RouterId, Sid};

fn broadcast_storm(c: &mut Criterion) {
    c.bench_function("noc_broadcast_storm_6x6", |b| {
        b.iter(|| {
            let mesh = Mesh::scorpio_chip();
            let mut cfg = NocConfig::scorpio();
            cfg.track_deliveries = false;
            let mut net: Network<u64> = Network::new(mesh, cfg);
            for r in 0..36u16 {
                let src = Endpoint::tile(RouterId(r));
                let _ = net.try_inject(src, Packet::request(src, Sid(r), 0, r as u64));
            }
            for _ in 0..600 {
                let eps: Vec<Endpoint> = net.mesh().endpoints().collect();
                for ep in eps {
                    let slots: Vec<_> = net.eject_heads(ep).map(|(s, _)| s).collect();
                    for s in slots {
                        net.eject_take(ep, s);
                    }
                }
                net.step();
                if net.is_drained() {
                    break;
                }
            }
            assert!(net.is_drained());
        });
    });
}

fn unicast_pingpong(c: &mut Criterion) {
    c.bench_function("noc_unicast_data_6x6", |b| {
        b.iter(|| {
            let mesh = Mesh::scorpio_chip();
            let mut cfg = NocConfig::scorpio();
            cfg.track_deliveries = false;
            let mut net: Network<u64> = Network::new(mesh, cfg);
            let src = Endpoint::tile(RouterId(0));
            let dst = Endpoint::tile(RouterId(35));
            for k in 0..8 {
                let _ = net.try_inject(src, Packet::response(src, dst, 3, k));
            }
            for _ in 0..400 {
                let slots: Vec<_> = net.eject_heads(dst).map(|(s, _)| s).collect();
                for s in slots {
                    net.eject_take(dst, s);
                }
                net.step();
                if net.is_drained() {
                    break;
                }
            }
            assert!(net.is_drained());
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = broadcast_storm, unicast_pingpong
}
criterion_main!(benches);
