//! Criterion benchmarks of full-system simulation throughput: one short
//! workload per protocol on a 4×4 system.

use criterion::{criterion_group, criterion_main, Criterion};
use scorpio::{Protocol, System, SystemConfig};
use scorpio_workloads::{generate, WorkloadParams};

fn run(protocol: Protocol) {
    let cfg = SystemConfig::square(4).with_protocol(protocol);
    let params = WorkloadParams::by_name("fluidanimate").unwrap().with_ops(40);
    let traces = generate(&params, cfg.cores(), 7);
    let mut sys = System::with_traces(cfg, traces);
    let r = sys.run_to_completion();
    assert_eq!(r.ops_completed, 16 * 40);
}

fn system_protocols(c: &mut Criterion) {
    c.bench_function("system_scorpio_4x4", |b| b.iter(|| run(Protocol::Scorpio)));
    c.bench_function("system_tokenb_4x4", |b| b.iter(|| run(Protocol::TokenB)));
    c.bench_function("system_htdir_4x4", |b| b.iter(|| run(Protocol::HtDir)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = system_protocols
}
criterion_main!(benches);
