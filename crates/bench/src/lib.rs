//! Shared harness for regenerating the paper's tables and figures.
//!
//! Each figure binary (`fig6`, `fig7`, `fig8`, `fig9`, `fig10`, `table1`,
//! `table2`) builds systems via [`run_workload`] and prints the same
//! rows/series the paper reports. Absolute cycle counts differ from the
//! authors' testbed (our substrate is a simulator; see DESIGN.md), but the
//! shapes — who wins, by what factor, where crossovers fall — are the
//! reproduction targets recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use scorpio::{System, SystemConfig, SystemReport};
use scorpio_workloads::{generate, WorkloadParams};

/// Operations per core used by the figure binaries. Override with the
/// `SCORPIO_OPS` environment variable to trade fidelity for speed.
pub fn ops_per_core() -> usize {
    std::env::var("SCORPIO_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(150)
}

/// Runs `params` (scaled to [`ops_per_core`]) on `cfg` and returns the
/// report.
pub fn run_workload(cfg: SystemConfig, params: &WorkloadParams) -> SystemReport {
    let scaled = params.clone().with_ops(ops_per_core());
    let traces = generate(&scaled, cfg.cores(), cfg.seed);
    let mut sys = System::with_traces(cfg, traces);
    sys.run_to_completion()
}

/// Formats a normalized-runtime table: one row per benchmark, one column
/// per configuration, all normalized to the first column.
pub fn print_normalized(
    title: &str,
    benchmarks: &[&str],
    configs: &[&str],
    runtimes: &[Vec<u64>],
) {
    println!("\n=== {title} ===");
    print!("{:<16}", "benchmark");
    for c in configs {
        print!("{c:>16}");
    }
    println!();
    let mut sums = vec![0.0; configs.len()];
    for (b, row) in benchmarks.iter().zip(runtimes) {
        print!("{b:<16}");
        let base = row[0] as f64;
        for (i, &rt) in row.iter().enumerate() {
            let norm = rt as f64 / base;
            sums[i] += norm;
            print!("{norm:>16.3}");
        }
        println!();
    }
    print!("{:<16}", "AVG");
    for s in &sums {
        print!("{:>16.3}", s / benchmarks.len() as f64);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    // One sequential test: the env var is process-global, so default
    // behaviour and override are checked in order.
    #[test]
    fn ops_default_and_tiny_run() {
        std::env::remove_var("SCORPIO_OPS");
        assert_eq!(ops_per_core(), 150);
        std::env::set_var("SCORPIO_OPS", "10");
        let cfg = SystemConfig::square(2);
        let params = WorkloadParams::by_name("lu").unwrap();
        let r = run_workload(cfg, &params);
        assert_eq!(r.ops_completed, 40);
        std::env::remove_var("SCORPIO_OPS");
    }
}
