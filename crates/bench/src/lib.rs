//! Shared harness for regenerating the paper's tables and figures.
//!
//! Experiment orchestration now lives in `scorpio-harness`: each figure
//! binary (`fig6`, `fig7`, `fig8`, `fig9`, `fig10`, `table1`, `table2`,
//! `ablation`, `scaling`) is a thin wrapper that resolves its scenario in
//! [`scorpio_harness::registry`] and hands it to the CLI driver, so `fig7`
//! and `harness run fig7` are the same sweep. This crate re-exports the
//! historical helpers for code that imported them from here. Absolute
//! cycle counts differ from the authors' testbed (our substrate is a
//! simulator; see DESIGN.md), but the shapes — who wins, by what factor,
//! where crossovers fall — are the reproduction targets recorded in
//! EXPERIMENTS.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use scorpio_harness::{ops_per_core, print_normalized, render_normalized, run_workload};

#[cfg(test)]
mod tests {
    use super::*;
    use scorpio::SystemConfig;
    use scorpio_workloads::WorkloadParams;

    // One sequential test: the env var is process-global, so default
    // behaviour and override are checked in order.
    #[test]
    fn ops_default_and_tiny_run() {
        std::env::remove_var("SCORPIO_OPS");
        assert_eq!(ops_per_core(), 150);
        std::env::set_var("SCORPIO_OPS", "10");
        let cfg = SystemConfig::square(2);
        let params = WorkloadParams::by_name("lu").unwrap();
        let r = run_workload(cfg, &params);
        assert_eq!(r.ops_completed, 40);
        std::env::remove_var("SCORPIO_OPS");
    }
}
