//! Figure 8: NoC design exploration — channel width (a), GO-REQ VCs (b),
//! UO-RESP VCs (c) and notification bits per core (d). Pass a/b/c/d to run
//! one panel; default runs all.

use scorpio::SystemConfig;
use scorpio_bench::{print_normalized, run_workload};
use scorpio_workloads::WorkloadParams;

fn sweep(title: &str, labels: &[&str], make: &dyn Fn(usize) -> SystemConfig) {
    let benchmarks = WorkloadParams::splash2();
    let names: Vec<&str> = benchmarks.iter().map(|b| b.name).collect();
    let mut runtimes = Vec::new();
    for params in &benchmarks {
        let mut row = Vec::new();
        for i in 0..labels.len() {
            let r = run_workload(make(i), params);
            eprintln!("[fig8] {} {} -> {}", params.name, labels[i], r.runtime_cycles);
            row.push(r.runtime_cycles);
        }
        runtimes.push(row);
    }
    print_normalized(title, &names, labels, &runtimes);
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_default();
    let k = 6;
    if which.is_empty() || which == "a" {
        let widths = [8u32, 16, 32];
        sweep(
            "Figure 8a — channel width",
            &["CW=8B", "CW=16B", "CW=32B"],
            &|i| SystemConfig::square(k).with_channel_bytes(widths[i]),
        );
    }
    if which.is_empty() || which == "b" {
        let vcs = [2u8, 4, 6];
        sweep(
            "Figure 8b — GO-REQ VCs",
            &["VCs=2", "VCs=4", "VCs=6"],
            &|i| SystemConfig::square(k).with_goreq_vcs(vcs[i]),
        );
    }
    if which.is_empty() || which == "c" {
        let combos: [(u32, u8); 4] = [(8, 2), (8, 4), (16, 2), (16, 4)];
        sweep(
            "Figure 8c — UO-RESP VCs × channel width",
            &["8B/2VC", "8B/4VC", "16B/2VC", "16B/4VC"],
            &|i| {
                SystemConfig::square(k)
                    .with_channel_bytes(combos[i].0)
                    .with_uoresp_vcs(combos[i].1)
            },
        );
    }
    if which.is_empty() || which == "d" {
        let bits = [1u8, 2, 3];
        sweep(
            "Figure 8d — notification bits per core (4 outstanding)",
            &["BW=1b", "BW=2b", "BW=3b"],
            &|i| {
                SystemConfig::square(k)
                    .with_outstanding(4)
                    .with_notification_bits(bits[i])
            },
        );
    }
}
