//! Figure 8: NoC design exploration — channel width (a), GO-REQ VCs (b),
//! UO-RESP VCs (c) and notification bits per core (d). Pass a/b/c/d to run
//! one panel; default runs all. Thin wrapper over the `fig8*` scenarios.

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let panels: Vec<&str> = match args.first().map(String::as_str) {
        Some("a") => vec!["fig8a"],
        Some("b") => vec!["fig8b"],
        Some("c") => vec!["fig8c"],
        Some("d") => vec!["fig8d"],
        _ => vec!["fig8a", "fig8b", "fig8c", "fig8d"],
    };
    if panels.len() == 1 {
        args.remove(0);
    }
    scorpio_harness::cli::bin_main(&panels, args);
}
