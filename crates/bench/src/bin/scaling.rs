//! Section 5.3: uncore throughput scaling at high core counts — GO-REQ VC
//! scaling (4 → 16 → 50) on 36/64/100-core meshes at constant per-core
//! injection rate, plus the theoretical broadcast throughput bound 1/k².

use scorpio::SystemConfig;
use scorpio_bench::run_workload;
use scorpio_workloads::WorkloadParams;

fn main() {
    let quick = std::env::args().nth(1).as_deref() == Some("small");
    let meshes: &[u16] = if quick { &[3, 4] } else { &[6, 8, 10] };
    let params = WorkloadParams::by_name("fluidanimate").unwrap();
    println!("=== Section 5.3 — GO-REQ VC scaling at high core counts ===");
    println!(
        "{:>6}{:>8}{:>10}{:>12}{:>14}{:>16}",
        "mesh", "cores", "GO-VCs", "runtime", "L2 svc (cyc)", "1/k^2 bound"
    );
    for &k in meshes {
        let vc_steps: &[u8] = match k {
            6 => &[4],
            8 => &[4, 16],
            _ => &[4, 16, 50],
        };
        for &vcs in vc_steps {
            let cfg = SystemConfig::square(k).with_goreq_vcs(vcs);
            let r = run_workload(cfg, &params);
            println!(
                "{:>4}x{:<3}{:>6}{:>10}{:>12}{:>14.1}{:>16.4}",
                k,
                k,
                k as usize * k as usize,
                vcs,
                r.runtime_cycles,
                r.l2_service_latency.mean(),
                1.0 / (k as f64 * k as f64)
            );
        }
    }
    println!("\nPer the paper: more GO-REQ VCs push throughput toward the");
    println!("topology bound, but a k x k mesh broadcast cannot exceed 1/k^2");
    println!("flits/node/cycle — multiple main networks are the cheaper fix.");
}
