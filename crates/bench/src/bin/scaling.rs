//! Section 5.3: uncore throughput scaling at high core counts — GO-REQ VC
//! scaling (4 → 16 → 50) on 36/64/100-core meshes (`small` runs 3×3/4×4).
//! Thin wrapper over the `scaling*` harness scenarios.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    scorpio_harness::cli::bin_main_with_variants("scaling", &[("small", "scaling-small")], args);
}
