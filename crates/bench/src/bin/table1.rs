//! Table 1: the chip feature summary. Thin wrapper over the `table1`
//! harness scenario.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    scorpio_harness::cli::bin_main(&["table1"], args);
}
