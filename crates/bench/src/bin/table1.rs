//! Table 1: the chip feature summary.

fn main() {
    println!("=== Table 1 — SCORPIO chip features ===");
    for (feature, value) in scorpio_physical::chip_feature_table() {
        println!("{feature:<24}{value}");
    }
}
