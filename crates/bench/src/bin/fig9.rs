//! Figure 9: tile power and area breakdowns from the analytical model.

use scorpio_physical::{
    chip_power_watts, notification_width_bits, tile_area_breakdown, tile_power_breakdown,
};

fn main() {
    println!("=== Figure 9a — tile power breakdown ===");
    for s in tile_power_breakdown() {
        println!("{:<16}{:>6.1}%", format!("{:?}", s.component), s.percent);
    }
    println!("\n=== Figure 9b — tile area breakdown ===");
    for s in tile_area_breakdown() {
        println!("{:<16}{:>6.1}%", format!("{:?}", s.component), s.percent);
    }
    println!("\nChip power (36 tiles): {:.1} W", chip_power_watts(36));
    println!(
        "Notification network width: 36×1b = {} bits (<1% tile area/power)",
        notification_width_bits(36, 1)
    );
}
