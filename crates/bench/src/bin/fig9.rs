//! Figure 9: tile power and area breakdowns from the analytical model.
//! Thin wrapper over the `fig9` harness scenario.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    scorpio_harness::cli::bin_main(&["fig9"], args);
}
