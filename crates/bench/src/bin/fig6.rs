//! Figure 6: normalized runtime and latency summaries for LPD-D, HT-D and
//! SCORPIO-D (36 cores by default; pass `small` for a 4×4 smoke run, `64`
//! for the 8×8 sweep). Thin wrapper over the `fig6*` harness scenarios.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    scorpio_harness::cli::bin_main_with_variants(
        "fig6",
        &[("small", "fig6-small"), ("64", "fig6-64")],
        args,
    );
}
