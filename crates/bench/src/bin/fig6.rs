//! Figure 6: normalized runtime and latency summaries for LPD-D, HT-D and
//! SCORPIO-D across SPLASH-2 + PARSEC workloads (36 cores by default;
//! pass `small` for a 4×4 smoke run, `64` for the 8×8 sweep).

use scorpio::{Protocol, SystemConfig};
use scorpio_bench::{print_normalized, run_workload};
use scorpio_workloads::WorkloadParams;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    let k: u16 = match arg.as_str() {
        "small" => 4,
        "64" => 8,
        _ => 6,
    };
    let protocols = [Protocol::LpdDir, Protocol::HtDir, Protocol::Scorpio];
    let benchmarks = WorkloadParams::figure6_set();
    let names: Vec<&str> = benchmarks.iter().map(|b| b.name).collect();
    let mut runtimes = Vec::new();
    let mut summaries = Vec::new();
    for params in &benchmarks {
        let mut row = Vec::new();
        for &p in &protocols {
            let mut cfg = SystemConfig::square(k).with_protocol(p);
            // The paper's 256 KB directory serves real benchmarks with
            // gigabyte working sets; our synthetic footprints are ~1000x
            // smaller, so the budget is scaled to preserve the capacity
            // pressure that differentiates LPD's wide entries from HT's
            // 2-bit entries (see EXPERIMENTS.md).
            cfg.dir_total_bytes = 8 * 1024;
            let r = run_workload(cfg, params);
            eprintln!("[fig6] {} {} -> {} cycles", params.name, p.name(), r.runtime_cycles);
            row.push(r.runtime_cycles);
            summaries.push((params.name, r));
        }
        runtimes.push(row);
    }
    print_normalized(
        &format!("Figure 6a — normalized runtime, {} cores", k as usize * k as usize),
        &names,
        &["LPD-D", "HT-D", "SCORPIO-D"],
        &runtimes,
    );
    println!("\n=== Figure 6b/6c — latency breakdown (cycles) ===");
    println!(
        "{:<16}{:<12}{:>10}{:>12}{:>12}{:>12}{:>12}",
        "benchmark", "protocol", "L2 svc", "c2c-served", "mem-served", "ordering", "%cache"
    );
    for (name, r) in &summaries {
        println!(
            "{:<16}{:<12}{:>10.1}{:>12.1}{:>12.1}{:>12.1}{:>11.1}%",
            name,
            r.protocol,
            r.l2_service_latency.mean(),
            r.cache_served.mean(),
            r.memory_served.mean(),
            r.ordering_delay.mean(),
            100.0 * r.cache_served_fraction()
        );
    }
}
