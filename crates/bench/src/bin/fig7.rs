//! Figure 7: SCORPIO vs TokenB vs INSO (expiry windows 20/40/80) on the
//! 16-core PARSEC subset.

use scorpio::{Protocol, SystemConfig};
use scorpio_bench::{print_normalized, run_workload};
use scorpio_workloads::WorkloadParams;

fn main() {
    let protocols = [
        Protocol::Scorpio,
        Protocol::TokenB,
        Protocol::Inso { expiry_window: 20 },
        Protocol::Inso { expiry_window: 40 },
        Protocol::Inso { expiry_window: 80 },
    ];
    let benchmarks = WorkloadParams::figure7_set();
    let names: Vec<&str> = benchmarks.iter().map(|b| b.name).collect();
    let mut runtimes = Vec::new();
    for params in &benchmarks {
        let mut row = Vec::new();
        for &p in &protocols {
            let cfg = SystemConfig::square(4).with_protocol(p);
            let r = run_workload(cfg, params);
            eprintln!(
                "[fig7] {} {} -> {} cycles ({} expiries)",
                params.name, p.name(), r.runtime_cycles, r.expiry_messages
            );
            row.push(r.runtime_cycles);
        }
        runtimes.push(row);
    }
    print_normalized(
        "Figure 7 — normalized runtime, 16 cores",
        &names,
        &["SCORPIO", "TokenB", "INSO-20", "INSO-40", "INSO-80"],
        &runtimes,
    );
}
