//! Figure 7: SCORPIO vs TokenB vs INSO (expiry windows 20/40/80) on the
//! 16-core PARSEC subset. Thin wrapper over the `fig7` harness scenario.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    scorpio_harness::cli::bin_main(&["fig7"], args);
}
