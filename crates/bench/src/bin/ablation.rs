//! Ablation study of SCORPIO's design choices (DESIGN.md §6): lookahead
//! bypassing, the region-tracker snoop filter, FID-list capacity, and
//! notification-window slack (`small` runs 4×4). Thin wrapper over the
//! `ablation*` harness scenarios.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    scorpio_harness::cli::bin_main_with_variants("ablation", &[("small", "ablation-small")], args);
}
