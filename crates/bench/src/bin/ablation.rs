//! Ablation study of SCORPIO's design choices (DESIGN.md §6): lookahead
//! bypassing, the region-tracker snoop filter, FID-list capacity, and
//! notification-window slack — each toggled on the chip configuration.

use scorpio::SystemConfig;
use scorpio_bench::run_workload;
use scorpio_workloads::WorkloadParams;

fn main() {
    let quick = std::env::args().nth(1).as_deref() == Some("small");
    let k = if quick { 4 } else { 6 };
    let params = WorkloadParams::by_name("fluidanimate").unwrap();

    let mut rows: Vec<(String, u64, f64, f64)> = Vec::new();
    let mut run = |name: &str, cfg: SystemConfig| {
        let r = run_workload(cfg, &params);
        rows.push((
            name.to_string(),
            r.runtime_cycles,
            r.l2_service_latency.mean(),
            r.ordering_delay.mean(),
        ));
    };

    run("baseline (chip)", SystemConfig::square(k));
    {
        let mut cfg = SystemConfig::square(k);
        cfg.noc.bypass = false;
        run("no lookahead bypass", cfg);
    }
    {
        let mut cfg = SystemConfig::square(k);
        cfg.l2.region_entries = None;
        run("no region tracker", cfg);
    }
    {
        let mut cfg = SystemConfig::square(k);
        cfg.l2.fid_capacity = 1;
        run("FID capacity 1", cfg);
    }
    {
        let mut cfg = SystemConfig::square(k);
        cfg.notification_window_slack = 13;
        run("2x notification window", cfg);
    }
    {
        let mut cfg = SystemConfig::square(k);
        cfg.notification_window_slack = 39;
        run("4x notification window", cfg);
    }

    println!("=== Ablation — {k}x{k}, fluidanimate ===");
    println!(
        "{:<26}{:>10}{:>12}{:>14}{:>12}",
        "configuration", "runtime", "L2 svc", "ordering", "normalized"
    );
    let base = rows[0].1 as f64;
    for (name, rt, svc, ord) in &rows {
        println!(
            "{name:<26}{rt:>10}{svc:>12.1}{ord:>14.1}{:>12.3}",
            *rt as f64 / base
        );
    }
}
