//! Table 2: multicore processor comparison.

fn main() {
    println!("=== Table 2 — multicore processor comparison ===");
    println!(
        "{:<16}{:<8}{:<26}{:<32}{}",
        "processor", "cores", "consistency", "coherence", "interconnect"
    );
    for c in scorpio_physical::processor_comparison_table() {
        println!(
            "{:<16}{:<8}{:<26}{:<32}{}",
            c.name, c.cores, c.consistency, c.coherence, c.interconnect
        );
    }
}
