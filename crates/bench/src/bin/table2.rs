//! Table 2: multicore processor comparison. Thin wrapper over the
//! `table2` harness scenario.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    scorpio_harness::cli::bin_main(&["table2"], args);
}
