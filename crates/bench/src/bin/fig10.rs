//! Figure 10: pipelined vs non-pipelined uncore (L2 + NIC) average service
//! latency across 6×6, 8×8 and 10×10 meshes (`small` runs 3×3/4×4).
//! Thin wrapper over the `fig10*` harness scenarios.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    scorpio_harness::cli::bin_main_with_variants("fig10", &[("small", "fig10-small")], args);
}
