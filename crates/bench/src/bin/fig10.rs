//! Figure 10: pipelined vs non-pipelined uncore (L2 + NIC) average service
//! latency across 6×6, 8×8 and 10×10 meshes.

use scorpio::SystemConfig;
use scorpio_bench::run_workload;
use scorpio_workloads::WorkloadParams;

fn main() {
    let quick = std::env::args().nth(1).as_deref() == Some("small");
    let meshes: &[u16] = if quick { &[3, 4] } else { &[6, 8, 10] };
    let names = ["barnes", "blackscholes", "canneal", "fft", "fluidanimate", "lu"];
    println!("=== Figure 10 — avg L2 service latency (cycles) ===");
    println!(
        "{:<16}{:>8}{:>12}{:>12}{:>10}",
        "benchmark", "mesh", "non-PL", "PL", "gain"
    );
    for &k in meshes {
        let mut sums = [0.0f64; 2];
        for name in names {
            let params = WorkloadParams::by_name(name).unwrap();
            let mut lat = [0.0f64; 2];
            for (i, pl) in [false, true].into_iter().enumerate() {
                let cfg = SystemConfig::square(k).with_pipelined_uncore(pl);
                let r = run_workload(cfg, &params);
                lat[i] = r.l2_service_latency.mean();
                sums[i] += lat[i];
            }
            println!(
                "{:<16}{:>5}x{:<2}{:>12.1}{:>12.1}{:>9.1}%",
                name, k, k, lat[0], lat[1],
                100.0 * (lat[0] - lat[1]) / lat[0]
            );
        }
        let n = names.len() as f64;
        println!(
            "{:<16}{:>5}x{:<2}{:>12.1}{:>12.1}{:>9.1}%  <- average",
            "AVG", k, k, sums[0] / n, sums[1] / n,
            100.0 * (sums[0] - sums[1]) / sums[0]
        );
    }
}
